//! SoA vs scalar candidate scoring: exactness gate + speedup report.
//!
//! A self-driving harness (`harness = false`, no criterion): builds a
//! small NY-like city, then scores every (query, trajectory) pair two
//! ways — the scalar AoS reference ([`atsq_gat::score_scalar`],
//! allocating per call) and the batch SoA kernel
//! ([`atsq_gat::ScoreScratch::score`], reused buffers, tight
//! vectorizable loops) — folding per-point `Dmpm` into `Dmm` exactly
//! as the search's candidate validation does. The resulting top-k
//! lists must be **byte-identical** (trajectory ids equal, distances
//! equal bit for bit); the run then times both kernels over the same
//! candidate sets and reports the speedup. Prints a table and emits
//! `BENCH_kernel.json` (path overridable via `BENCH_OUT`).
//!
//! Environment knobs: `KERNEL_SCALE` (dataset scale, default 0.004),
//! `KERNEL_QUERIES` (default 16), `KERNEL_ROUNDS` (timed sweeps per
//! kernel, default 3).

use atsq_bench::{workload, Setting};
use atsq_core::matching::point_match::{dmpm_from_sorted, QueryMask};
use atsq_datagen::{generate, CityConfig};
use atsq_gat::apl::TrajectoryPostings;
use atsq_gat::{score_scalar, ScoreScratch};
use atsq_types::{rank_top_k, Dataset, Query, QueryResult};
use std::time::Instant;

fn main() {
    let scale: f64 = env_or("KERNEL_SCALE", 0.004);
    let n_queries: usize = env_or("KERNEL_QUERIES", 16);
    let rounds: usize = env_or("KERNEL_ROUNDS", 3);

    let config = CityConfig::ny_like(scale);
    let dataset = generate(&config).expect("dataset");
    let setting = Setting::default();
    let queries = workload(&dataset, &setting, n_queries, 0x5EED);
    let postings: Vec<TrajectoryPostings> = dataset
        .trajectories()
        .iter()
        .map(TrajectoryPostings::build)
        .collect();

    println!(
        "kernel: {} ({} trajectories), {} queries, k={}, {} rounds",
        config.name,
        dataset.len(),
        queries.len(),
        setting.k,
        rounds
    );

    // Exactness gate: top-k from the SoA kernel must be byte-identical
    // to top-k from the scalar reference on every query.
    let mut scratch = ScoreScratch::new();
    for q in &queries {
        let scalar = top_k(&dataset, &postings, q, setting.k, |qp, tr_points, p| {
            let qmask = QueryMask::new(&qp.activities);
            let indexes = p.candidate_indexes(&qp.activities);
            let cp = score_scalar(&qp.loc, &qmask, tr_points, &indexes);
            dmpm_from_sorted(&qmask, &cp)
        });
        let soa = top_k(&dataset, &postings, q, setting.k, |qp, tr_points, p| {
            let qmask = QueryMask::new(&qp.activities);
            p.candidate_indexes_into(&qp.activities, &mut scratch.indexes);
            let cp = scratch.score(&qp.loc, &qmask, tr_points);
            dmpm_from_sorted(&qmask, cp)
        });
        assert_eq!(scalar.len(), soa.len(), "top-k cardinality diverged");
        for (a, b) in scalar.iter().zip(&soa) {
            assert_eq!(a.trajectory, b.trajectory, "top-k membership diverged");
            assert_eq!(
                a.distance.to_bits(),
                b.distance.to_bits(),
                "top-k distance not bit-identical"
            );
        }
    }
    println!("top-k byte-identical across {} queries", queries.len());

    // Timed sweeps over IDENTICAL candidate sets: each timed call is
    // the full per-(query point, trajectory) scoring step the search's
    // candidate validation performs — APL-union index list, then
    // gather + distance + filter + sort. Both kernels derive the same
    // deterministic index list from the same inputs; the scalar side
    // pays the pre-kernel per-call allocations (a fresh index Vec and
    // a fresh candidate Vec), the SoA side reuses scratch buffers, the
    // shape each has inside the engine. Rounds alternate between
    // kernels to cancel clock/thermal drift, and the medians are
    // reported.
    struct Case {
        tr: usize,
        loc: atsq_types::Point,
        qmask: QueryMask,
        acts: atsq_types::ActivitySet,
    }
    let mut cases = Vec::new();
    for q in &queries {
        for t in 0..postings.len() {
            for qp in &q.points {
                cases.push(Case {
                    tr: t,
                    loc: qp.loc,
                    qmask: QueryMask::new(&qp.activities),
                    acts: qp.activities.clone(),
                });
            }
        }
    }
    let candidates: u64 = cases
        .iter()
        .map(|c| postings[c.tr].candidate_indexes(&c.acts).len() as u64)
        .sum();

    let trajectories = dataset.trajectories();
    let mut scalar_rounds = Vec::with_capacity(rounds);
    let mut soa_rounds = Vec::with_capacity(rounds);
    for round in 0..2 * rounds {
        if round % 2 == 0 {
            let t0 = Instant::now();
            for c in &cases {
                let indexes = postings[c.tr].candidate_indexes(&c.acts);
                let cp = score_scalar(&c.loc, &c.qmask, &trajectories[c.tr].points, &indexes);
                std::hint::black_box(&cp);
            }
            scalar_rounds.push(t0.elapsed().as_secs_f64() * 1e3);
        } else {
            let t0 = Instant::now();
            for c in &cases {
                postings[c.tr].candidate_indexes_into(&c.acts, &mut scratch.indexes);
                let cp = scratch.score(&c.loc, &c.qmask, &trajectories[c.tr].points);
                std::hint::black_box(&cp);
            }
            soa_rounds.push(t0.elapsed().as_secs_f64() * 1e3);
        }
    }
    let scalar_ms = median(&mut scalar_rounds);
    let soa_ms = median(&mut soa_rounds);
    let speedup = scalar_ms / soa_ms.max(1e-9);

    println!(
        "{:>10}{:>14}{:>14}{:>14}{:>10}",
        "calls", "candidates", "scalar ms", "SoA ms", "speedup"
    );
    println!(
        "{:>10}{:>14}{:>14.3}{:>14.3}{:>9.2}x",
        cases.len(),
        candidates,
        scalar_ms,
        soa_ms,
        speedup
    );

    // Batch-size sweep: candidate counts on this workload sit mostly
    // under the SoA dispatch threshold (median APL union ~10 points),
    // where the kernel intentionally takes the one-pass scalar fill —
    // so the workload figure above reads ~1x by design. The sweep
    // scores slices of the pooled city points at fixed batch sizes to
    // show where the vectorized column path pays (denser activity
    // vocabularies and longer trajectories land here).
    let pool: Vec<atsq_types::TrajectoryPoint> = trajectories
        .iter()
        .flat_map(|t| t.points.iter().cloned())
        .collect();
    let sweep_mask = QueryMask::new(&queries[0].points[0].activities);
    let sweep_loc = queries[0].points[0].loc;
    let mut batch_rows = Vec::new();
    println!(
        "{:>10}{:>14}{:>14}{:>10}",
        "batch", "scalar ms", "SoA ms", "speedup"
    );
    for n in [16usize, 64, 256, 1024] {
        let n = n.min(pool.len());
        let indexes: Vec<u32> = (0..n as u32).collect();
        let reps = (1 << 20) / n.max(1);
        let mut scalar_rounds = Vec::with_capacity(rounds);
        let mut soa_rounds = Vec::with_capacity(rounds);
        for round in 0..2 * rounds {
            if round % 2 == 0 {
                let t0 = Instant::now();
                for _ in 0..reps {
                    std::hint::black_box(score_scalar(&sweep_loc, &sweep_mask, &pool, &indexes));
                }
                scalar_rounds.push(t0.elapsed().as_secs_f64() * 1e3);
            } else {
                let t0 = Instant::now();
                for _ in 0..reps {
                    scratch.indexes.clear();
                    scratch.indexes.extend_from_slice(&indexes);
                    std::hint::black_box(scratch.score(&sweep_loc, &sweep_mask, &pool));
                }
                soa_rounds.push(t0.elapsed().as_secs_f64() * 1e3);
            }
        }
        let b_scalar = median(&mut scalar_rounds);
        let b_soa = median(&mut soa_rounds);
        println!(
            "{:>10}{:>14.3}{:>14.3}{:>9.2}x",
            n,
            b_scalar,
            b_soa,
            b_scalar / b_soa.max(1e-9)
        );
        batch_rows.push(format!(
            r#"{{"batch":{},"scalar_ms":{:.4},"soa_ms":{:.4},"speedup":{:.4}}}"#,
            n,
            b_scalar,
            b_soa,
            b_scalar / b_soa.max(1e-9)
        ));
    }

    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_kernel.json".into());
    let json = format!(
        concat!(
            r#"{{"bench":"kernel","city":"{}","trajectories":{},"queries":{},"#,
            r#""rounds":{},"calls_per_round":{},"candidates_per_round":{},"#,
            r#""scalar_ms":{:.4},"soa_ms":{:.4},"speedup":{:.4},"#,
            r#""batch_sweep":[{}],"topk_bit_identical":true}}"#
        ),
        config.name,
        dataset.len(),
        queries.len(),
        rounds,
        cases.len(),
        candidates,
        scalar_ms,
        soa_ms,
        speedup,
        batch_rows.join(",")
    );
    std::fs::write(&out, json).expect("write json");
    println!("wrote {out}");
}

fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn median(rounds: &mut [f64]) -> f64 {
    rounds.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    rounds[rounds.len() / 2]
}

/// Ranks every trajectory by the `Dmm` fold over per-query-point
/// `Dmpm` values produced by `score_one` — the same fold the search's
/// candidate validation performs.
fn top_k(
    dataset: &Dataset,
    postings: &[TrajectoryPostings],
    query: &Query,
    k: usize,
    mut score_one: impl FnMut(
        &atsq_types::QueryPoint,
        &[atsq_types::TrajectoryPoint],
        &TrajectoryPostings,
    ) -> Option<f64>,
) -> Vec<QueryResult> {
    let all_acts = query.all_activities();
    let mut results = Vec::new();
    for (tr, p) in dataset.trajectories().iter().zip(postings) {
        if !p.contains_all(&all_acts) {
            continue;
        }
        let mut total = 0.0;
        let mut covered = true;
        for qp in &query.points {
            match score_one(qp, &tr.points, p) {
                Some(d) => total += d,
                None => {
                    covered = false;
                    break;
                }
            }
        }
        if covered {
            results.push(QueryResult::new(tr.id, total));
        }
    }
    rank_top_k(results, k)
}
