//! Fig. 3 — effect of `k` on ATSQ/OATSQ running time, all engines.

use atsq_bench::{cities, workload, Setting};
use atsq_core::QueryEngine;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let (name, dataset) = cities(0.004).remove(0);
    let engines = atsq_core::Engine::build_all(&dataset).unwrap();
    let mut group = c.benchmark_group(format!("fig3_k_{name}"));
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for k in [5usize, 15, 25] {
        let setting = Setting {
            k,
            ..Setting::default()
        };
        let queries = workload(&dataset, &setting, 3, 0x3a);
        for e in &engines {
            group.bench_with_input(
                BenchmarkId::new(format!("atsq/{}", e.name()), k),
                &k,
                |b, &k| {
                    b.iter(|| {
                        for q in &queries {
                            std::hint::black_box(e.atsq(&dataset, q, k));
                        }
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("oatsq/{}", e.name()), k),
                &k,
                |b, &k| {
                    b.iter(|| {
                        for q in &queries {
                            std::hint::black_box(e.oatsq(&dataset, q, k));
                        }
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
