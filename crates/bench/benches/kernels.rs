//! Microbenchmarks of the distance kernels (Algorithms 3 and 4) and
//! the index build paths.

use atsq_bench::{cities, workload, Setting};
use atsq_core::matching::{min_match_distance, order_match::min_order_match_distance};
use atsq_core::GatEngine;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let (_, dataset) = cities(0.004).remove(0);
    let queries = workload(&dataset, &Setting::default(), 5, 0x9a);
    // A mid-sized trajectory for kernel benches.
    let tr = dataset
        .trajectories()
        .iter()
        .max_by_key(|t| t.len())
        .unwrap();

    c.bench_function("kernel/dmm", |b| {
        b.iter(|| {
            for q in &queries {
                std::hint::black_box(min_match_distance(q, &tr.points));
            }
        })
    });
    c.bench_function("kernel/dmom", |b| {
        b.iter(|| {
            for q in &queries {
                std::hint::black_box(min_order_match_distance(q, &tr.points, f64::INFINITY));
            }
        })
    });
    let mut g = c.benchmark_group("build");
    g.sample_size(10);
    g.bench_function("gat_index", |b| {
        b.iter(|| std::hint::black_box(GatEngine::build(&dataset).unwrap()))
    });
    g.bench_function("rt_engine", |b| {
        b.iter(|| std::hint::black_box(atsq_core::RtEngine::build(&dataset)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
