//! Shard scaling: top-k latency and per-shard work vs. shard count.
//!
//! A self-driving harness (`harness = false`, no criterion): builds
//! the fig7-scale NY-like city, then measures ATSQ / OATSQ top-k
//! latency through [`ShardedEngine`] at a sweep of shard counts for
//! both partitioners, verifying along the way that every sharded
//! configuration answers exactly like the single index. Prints a
//! table and emits `BENCH_shard_scaling.json` (path overridable via
//! `BENCH_OUT`) for the benchmark trajectory.
//!
//! Reported per configuration:
//!
//! * `*_ms` — measured wall-clock on this host. With the single-pass
//!   shared traversal, sharded *total* work is ~1× the single index
//!   (one grid/HICL pass + routing) instead of the legacy ~S×, so
//!   wall-clock no longer multiplies with S even on few cores.
//! * `*_wall_ratio` — wall-clock relative to S=1 under the same
//!   partitioner. The run **asserts** this stays well under S for
//!   every S>1 sweep point; before the shared traversal the ratio
//!   trended toward ~S on a saturated host.
//! * `*_critical_ms` — the per-query critical path: shared (router)
//!   traversal time plus the busiest shard's verification time. This
//!   is the latency a host with one core per shard observes. The
//!   JSON records `parallelism` so a curve can always be interpreted.
//! * `candidates_per_shard` — candidates each shard verified during
//!   the timed ATSQ pass. With shared traversal these **sum** to the
//!   single traversal's candidate count (ownership attribution)
//!   rather than duplicating it per shard.
//!
//! Environment knobs: `SHARD_SCALING_SCALE` (dataset scale, default
//! 0.006 — the Fig. 7 full-size city), `SHARD_SCALING_QUERIES`
//! (default 24), `SHARD_SCALING_SHARDS` (comma-separated, default
//! `1,2,4,8`).

use atsq_bench::{workload, Setting};
use atsq_core::{GatEngine, Partition, QueryEngine, ShardedEngine};
use atsq_datagen::{generate, CityConfig};
use atsq_types::Query;
use std::time::Instant;

struct Sweep {
    partition: Partition,
    shards: usize,
    atsq_ms: f64,
    atsq_wall_ratio: f64,
    atsq_critical_ms: f64,
    oatsq_ms: f64,
    oatsq_wall_ratio: f64,
    oatsq_critical_ms: f64,
    router_ms: f64,
    candidates_per_shard: Vec<u64>,
}

fn main() {
    let scale: f64 = env_or("SHARD_SCALING_SCALE", 0.006);
    let n_queries: usize = env_or("SHARD_SCALING_QUERIES", 24);
    let shard_counts: Vec<usize> = std::env::var("SHARD_SCALING_SHARDS")
        .unwrap_or_else(|_| "1,2,4,8".into())
        .split(',')
        .map(|s| s.trim().parse().expect("SHARD_SCALING_SHARDS"))
        .collect();
    let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());

    let config = CityConfig::ny_like(scale);
    let dataset = generate(&config).expect("dataset");
    let setting = Setting::default();
    let queries = workload(&dataset, &setting, n_queries, 0x5AAD);
    let single = GatEngine::build(&dataset).expect("single index");

    println!(
        "shard_scaling: {} ({} trajectories), {} queries, k={}, parallelism {}",
        config.name,
        dataset.len(),
        queries.len(),
        setting.k,
        parallelism
    );
    println!(
        "{:>10}{:>8}{:>12}{:>9}{:>12}{:>12}{:>9}{:>12}{:>11}",
        "partition",
        "shards",
        "ATSQ ms",
        "ratio",
        "crit ms",
        "OATSQ ms",
        "ratio",
        "crit ms",
        "router ms"
    );

    let mut sweeps = Vec::new();
    for partition in [Partition::Hash, Partition::Spatial] {
        let mut base_atsq_ms = f64::NAN;
        let mut base_oatsq_ms = f64::NAN;
        for &shards in &shard_counts {
            let engine = ShardedEngine::build(&dataset, shards, partition).expect("sharded engine");
            verify(&engine, &single, &dataset, &queries, setting.k);
            let atsq = time_ms(&engine, &queries, |q| {
                std::hint::black_box(engine.atsq(q, setting.k));
            });
            let candidates_per_shard: Vec<u64> = engine
                .per_shard_stats()
                .iter()
                .map(|s| s.candidates_retrieved)
                .collect();
            let oatsq = time_ms(&engine, &queries, |q| {
                std::hint::black_box(engine.oatsq(q, setting.k));
            });
            if shards == 1 {
                base_atsq_ms = atsq.wall_ms;
                base_oatsq_ms = oatsq.wall_ms;
            }
            let atsq_wall_ratio = atsq.wall_ms / base_atsq_ms;
            let oatsq_wall_ratio = oatsq.wall_ms / base_oatsq_ms;
            println!(
                "{:>10}{:>8}{:>12.3}{:>9.2}{:>12.3}{:>12.3}{:>9.2}{:>12.3}{:>11.3}",
                partition.to_string(),
                shards,
                atsq.wall_ms,
                atsq_wall_ratio,
                atsq.critical_ms,
                oatsq.wall_ms,
                oatsq_wall_ratio,
                oatsq.critical_ms,
                atsq.router_ms + oatsq.router_ms
            );
            // The point of the shared traversal: total sharded work is
            // ~1× a single index plus routing, so wall-clock must not
            // drift toward the legacy ~S× even on a saturated host.
            // (The bound is deliberately loose — CI boxes are noisy —
            // but it would have failed the per-shard-traversal design
            // at every S.)
            if shards > 1 && !base_atsq_ms.is_nan() {
                let limit = 0.75 * shards as f64;
                assert!(
                    atsq_wall_ratio < limit,
                    "ATSQ wall-clock ratio {atsq_wall_ratio:.2} at S={shards} reached {limit:.2}"
                );
                assert!(
                    oatsq_wall_ratio < limit,
                    "OATSQ wall-clock ratio {oatsq_wall_ratio:.2} at S={shards} reached {limit:.2}"
                );
            }
            sweeps.push(Sweep {
                partition,
                shards,
                atsq_ms: atsq.wall_ms,
                atsq_wall_ratio,
                atsq_critical_ms: atsq.critical_ms,
                oatsq_ms: oatsq.wall_ms,
                oatsq_wall_ratio,
                oatsq_critical_ms: oatsq.critical_ms,
                router_ms: atsq.router_ms + oatsq.router_ms,
                candidates_per_shard,
            });
        }
    }

    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_shard_scaling.json".into());
    let json = to_json(&config.name, &dataset, &queries, parallelism, &sweeps);
    std::fs::write(&out, json).expect("write json");
    println!("wrote {out}");
}

fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Timing {
    wall_ms: f64,
    critical_ms: f64,
    router_ms: f64,
}

/// Average wall-clock and critical-path per query in ms, after one
/// warm-up pass. The critical path of one query is the shared
/// (router) traversal plus its busiest shard's verification time;
/// per-shard and router busy times are accumulated across the run, so
/// `router + max(shard)` divided by the query count is the average
/// critical path when the same shard is busiest on every query
/// (typical for this sweep's balanced partitions). When the busiest
/// shard varies per query, max-of-totals understates avg-of-maxes, so
/// read the column as an optimistic (lower) bound on ≥S-core latency.
fn time_ms(engine: &ShardedEngine, queries: &[Query], mut run: impl FnMut(&Query)) -> Timing {
    for q in queries {
        run(q);
    }
    engine.reset_stats();
    let t0 = Instant::now();
    for q in queries {
        run(q);
    }
    let n = queries.len().max(1) as f64;
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3 / n;
    let router_ms = engine.router_busy_ns() as f64 / 1e6 / n;
    let busiest_ms = engine.per_shard_busy_ns().into_iter().max().unwrap_or(0) as f64 / 1e6 / n;
    Timing {
        wall_ms,
        critical_ms: router_ms + busiest_ms,
        router_ms,
    }
}

/// Exactness gate: a bench point for a configuration that answers
/// differently from the single index would be meaningless.
fn verify(
    engine: &ShardedEngine,
    single: &GatEngine,
    dataset: &atsq_types::Dataset,
    queries: &[Query],
    k: usize,
) {
    for q in queries.iter().take(4) {
        assert_eq!(
            engine.atsq(q, k),
            single.atsq(dataset, q, k),
            "sharded ATSQ diverged at S={}",
            engine.shard_count()
        );
        assert_eq!(
            engine.oatsq(q, k),
            single.oatsq(dataset, q, k),
            "sharded OATSQ diverged at S={}",
            engine.shard_count()
        );
    }
}

fn to_json(
    city: &str,
    dataset: &atsq_types::Dataset,
    queries: &[Query],
    parallelism: usize,
    sweeps: &[Sweep],
) -> String {
    let rows: Vec<String> = sweeps
        .iter()
        .map(|s| {
            let per_shard: Vec<String> =
                s.candidates_per_shard.iter().map(u64::to_string).collect();
            format!(
                concat!(
                    r#"{{"partition":"{}","shards":{},"atsq_ms":{:.4},"#,
                    r#""atsq_wall_ratio":{:.4},"atsq_critical_ms":{:.4},"#,
                    r#""oatsq_ms":{:.4},"oatsq_wall_ratio":{:.4},"#,
                    r#""oatsq_critical_ms":{:.4},"router_ms":{:.4},"#,
                    r#""candidates_per_shard":[{}]}}"#
                ),
                s.partition,
                s.shards,
                s.atsq_ms,
                s.atsq_wall_ratio,
                s.atsq_critical_ms,
                s.oatsq_ms,
                s.oatsq_wall_ratio,
                s.oatsq_critical_ms,
                s.router_ms,
                per_shard.join(",")
            )
        })
        .collect();
    format!(
        concat!(
            r#"{{"bench":"shard_scaling","city":"{}","trajectories":{},"#,
            r#""queries":{},"parallelism":{},"sweeps":[{}]}}"#
        ),
        city,
        dataset.len(),
        queries.len(),
        parallelism,
        rows.join(",")
    )
}
