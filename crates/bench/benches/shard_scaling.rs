//! Shard scaling: top-k latency vs. shard count.
//!
//! A self-driving harness (`harness = false`, no criterion): builds
//! the fig7-scale NY-like city, then measures ATSQ / OATSQ top-k
//! latency through [`ShardedEngine`] at a sweep of shard counts for
//! both partitioners, verifying along the way that every sharded
//! configuration answers exactly like the single index. Prints a
//! table and emits `BENCH_shard_scaling.json` (path overridable via
//! `BENCH_OUT`) for the benchmark trajectory.
//!
//! Two latencies are reported per configuration:
//!
//! * `*_ms` — measured wall-clock on this host. The engine runs
//!   shards on `min(S, available_parallelism)` threads, so this is
//!   what the current hardware delivers.
//! * `*_critical_ms` — the per-query critical path: the busiest
//!   shard's search time (from [`ShardedEngine::per_shard_busy_ns`]).
//!   This is the latency a host with at least one core per shard
//!   observes; on a single-core host wall-clock instead approaches
//!   the *sum* of shard times and multi-shard configurations cannot
//!   beat one shard no matter the algorithm. The JSON records
//!   `parallelism` so a curve can always be interpreted.
//!
//! Environment knobs: `SHARD_SCALING_SCALE` (dataset scale, default
//! 0.006 — the Fig. 7 full-size city), `SHARD_SCALING_QUERIES`
//! (default 24), `SHARD_SCALING_SHARDS` (comma-separated, default
//! `1,2,4,8`).

use atsq_bench::{workload, Setting};
use atsq_core::{GatEngine, Partition, QueryEngine, ShardedEngine};
use atsq_datagen::{generate, CityConfig};
use atsq_types::Query;
use std::time::Instant;

struct Sweep {
    partition: Partition,
    shards: usize,
    atsq_ms: f64,
    atsq_critical_ms: f64,
    oatsq_ms: f64,
    oatsq_critical_ms: f64,
}

fn main() {
    let scale: f64 = env_or("SHARD_SCALING_SCALE", 0.006);
    let n_queries: usize = env_or("SHARD_SCALING_QUERIES", 24);
    let shard_counts: Vec<usize> = std::env::var("SHARD_SCALING_SHARDS")
        .unwrap_or_else(|_| "1,2,4,8".into())
        .split(',')
        .map(|s| s.trim().parse().expect("SHARD_SCALING_SHARDS"))
        .collect();
    let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());

    let config = CityConfig::ny_like(scale);
    let dataset = generate(&config).expect("dataset");
    let setting = Setting::default();
    let queries = workload(&dataset, &setting, n_queries, 0x5AAD);
    let single = GatEngine::build(&dataset).expect("single index");

    println!(
        "shard_scaling: {} ({} trajectories), {} queries, k={}, parallelism {}",
        config.name,
        dataset.len(),
        queries.len(),
        setting.k,
        parallelism
    );
    if parallelism == 1 {
        println!(
            "note: single-core host — wall-clock sums the shards; \
             the *_critical_ms columns carry the scaling curve"
        );
    }
    println!(
        "{:>10}{:>8}{:>12}{:>14}{:>12}{:>14}",
        "partition", "shards", "ATSQ ms", "crit ms", "OATSQ ms", "crit ms"
    );

    let mut sweeps = Vec::new();
    for partition in [Partition::Hash, Partition::Spatial] {
        for &shards in &shard_counts {
            let engine = ShardedEngine::build(&dataset, shards, partition).expect("sharded engine");
            verify(&engine, &single, &dataset, &queries, setting.k);
            let (atsq_ms, atsq_critical_ms) = time_ms(&engine, &queries, |q| {
                std::hint::black_box(engine.atsq(q, setting.k));
            });
            let (oatsq_ms, oatsq_critical_ms) = time_ms(&engine, &queries, |q| {
                std::hint::black_box(engine.oatsq(q, setting.k));
            });
            println!(
                "{:>10}{:>8}{:>12.3}{:>14.3}{:>12.3}{:>14.3}",
                partition.to_string(),
                shards,
                atsq_ms,
                atsq_critical_ms,
                oatsq_ms,
                oatsq_critical_ms
            );
            sweeps.push(Sweep {
                partition,
                shards,
                atsq_ms,
                atsq_critical_ms,
                oatsq_ms,
                oatsq_critical_ms,
            });
        }
    }

    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_shard_scaling.json".into());
    let json = to_json(&config.name, &dataset, &queries, parallelism, &sweeps);
    std::fs::write(&out, json).expect("write json");
    println!("wrote {out}");
}

fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Average wall-clock and critical-path per query in ms, after one
/// warm-up pass. The critical path of one query is its busiest
/// shard's search time; per-shard busy time is accumulated across the
/// run, so the busiest shard's total divided by the query count is
/// the average critical path when the same shard is busiest on every
/// query (typical for this sweep's balanced partitions). When the
/// busiest shard varies per query, max-of-totals understates
/// avg-of-maxes, so read the column as an optimistic (lower) bound on
/// ≥S-core latency.
fn time_ms(engine: &ShardedEngine, queries: &[Query], mut run: impl FnMut(&Query)) -> (f64, f64) {
    for q in queries {
        run(q);
    }
    engine.reset_stats();
    let t0 = Instant::now();
    for q in queries {
        run(q);
    }
    let n = queries.len().max(1) as f64;
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3 / n;
    let critical_ms = engine.per_shard_busy_ns().into_iter().max().unwrap_or(0) as f64 / 1e6 / n;
    (wall_ms, critical_ms)
}

/// Exactness gate: a bench point for a configuration that answers
/// differently from the single index would be meaningless.
fn verify(
    engine: &ShardedEngine,
    single: &GatEngine,
    dataset: &atsq_types::Dataset,
    queries: &[Query],
    k: usize,
) {
    for q in queries.iter().take(4) {
        assert_eq!(
            engine.atsq(q, k),
            single.atsq(dataset, q, k),
            "sharded ATSQ diverged at S={}",
            engine.shard_count()
        );
        assert_eq!(
            engine.oatsq(q, k),
            single.oatsq(dataset, q, k),
            "sharded OATSQ diverged at S={}",
            engine.shard_count()
        );
    }
}

fn to_json(
    city: &str,
    dataset: &atsq_types::Dataset,
    queries: &[Query],
    parallelism: usize,
    sweeps: &[Sweep],
) -> String {
    let rows: Vec<String> = sweeps
        .iter()
        .map(|s| {
            format!(
                concat!(
                    r#"{{"partition":"{}","shards":{},"atsq_ms":{:.4},"#,
                    r#""atsq_critical_ms":{:.4},"oatsq_ms":{:.4},"oatsq_critical_ms":{:.4}}}"#
                ),
                s.partition,
                s.shards,
                s.atsq_ms,
                s.atsq_critical_ms,
                s.oatsq_ms,
                s.oatsq_critical_ms
            )
        })
        .collect();
    format!(
        concat!(
            r#"{{"bench":"shard_scaling","city":"{}","trajectories":{},"#,
            r#""queries":{},"parallelism":{},"sweeps":[{}]}}"#
        ),
        city,
        dataset.len(),
        queries.len(),
        parallelism,
        rows.join(",")
    )
}
