//! Storage-layer benches: the varint/delta codec, the record heap, the
//! buffer pool under different locality regimes, and the end-to-end
//! paged-vs-memory GAT ablation (our "APL on disk" substitution).

use atsq_bench::{cities, workload, Setting};
use atsq_core::{GatEngine, QueryEngine};
use atsq_core::{PagedAplConfig, PagedBacking};
use atsq_gat::GatConfig;
use atsq_storage::{codec, BufferPool, MemPageStore, PageId, RecordHeap};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    // Ascending with varied gaps, like real point-index postings.
    let postings: Vec<u32> = (0..1000u32)
        .scan(0u32, |acc, i| {
            *acc += 1 + (i % 7);
            Some(*acc)
        })
        .collect();
    group.bench_function("put_ascending_1k", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(2048);
            codec::put_ascending(&mut buf, std::hint::black_box(&postings));
            std::hint::black_box(buf)
        })
    });
    let mut encoded = Vec::new();
    codec::put_ascending(&mut encoded, &postings);
    group.bench_function("get_ascending_1k", |b| {
        b.iter(|| {
            let mut pos = 0;
            std::hint::black_box(codec::get_ascending(&encoded, &mut pos)).unwrap()
        })
    });
    group.finish();
}

fn bench_heap(c: &mut Criterion) {
    let mut group = c.benchmark_group("record_heap");
    group.bench_function("append_100_small", |b| {
        b.iter(|| {
            let pool = BufferPool::new(MemPageStore::new(4096).unwrap(), 16).unwrap();
            let mut heap = RecordHeap::new(pool);
            for i in 0..100u32 {
                let rec = [i as u8; 40];
                std::hint::black_box(heap.append(&rec).unwrap());
            }
        })
    });
    // Read path: hot (all resident) vs cold (one-frame pool).
    for (label, frames) in [("hot", 64), ("cold", 1)] {
        let pool = BufferPool::new(MemPageStore::new(4096).unwrap(), frames).unwrap();
        let mut heap = RecordHeap::new(pool);
        let ids: Vec<_> = (0..100u32)
            .map(|i| heap.append(&[i as u8; 40]).unwrap())
            .collect();
        group.bench_with_input(BenchmarkId::new("get_100", label), &label, |b, _| {
            b.iter(|| {
                for &id in &ids {
                    std::hint::black_box(heap.get(id).unwrap());
                }
            })
        });
    }
    group.finish();
}

fn bench_pool_locality(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer_pool");
    let pages = 256u64;
    for (label, stride) in [("sequential", 1u64), ("strided_17", 17u64)] {
        let pool = BufferPool::new(MemPageStore::new(4096).unwrap(), 32).unwrap();
        for _ in 0..pages {
            pool.allocate().unwrap();
        }
        group.bench_with_input(BenchmarkId::new("sweep_256", label), &label, |b, _| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..pages {
                    let id = PageId((i * stride) % pages);
                    acc += pool.with_page(id, |pl| pl[0] as u64).unwrap();
                }
                std::hint::black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_paged_vs_memory(c: &mut Criterion) {
    let (name, dataset) = cities(0.004).remove(0);
    let mut group = c.benchmark_group(format!("paged_apl_{name}"));
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let setting = Setting::default();
    let queries = workload(&dataset, &setting, 3, 0xd1);

    let mem = GatEngine::build(&dataset).unwrap();
    group.bench_function("memory", |b| {
        b.iter(|| {
            for q in &queries {
                std::hint::black_box(mem.atsq(&dataset, q, setting.k));
            }
        })
    });
    for frames in [1024usize, 16, 1] {
        let engine = GatEngine::build_paged(
            &dataset,
            GatConfig::default(),
            &PagedAplConfig {
                pool_frames: frames,
                backing: PagedBacking::Memory,
                ..PagedAplConfig::default()
            },
        )
        .unwrap();
        group.bench_with_input(
            BenchmarkId::new("paged", format!("frames{frames}")),
            &frames,
            |b, _| {
                b.iter(|| {
                    for q in &queries {
                        std::hint::black_box(engine.atsq(&dataset, q, setting.k));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_codec,
    bench_heap,
    bench_pool_locality,
    bench_paged_vs_memory
);
criterion_main!(benches);
