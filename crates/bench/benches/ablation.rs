//! Ablation benches for GAT's design choices: the TAS sketch, the
//! tight Algorithm-2 lower bound, and the candidate batch size λ.

use atsq_bench::{cities, workload, Setting};
use atsq_core::{GatEngine, QueryEngine};
use atsq_gat::GatConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let (name, dataset) = cities(0.004).remove(0);
    let mut group = c.benchmark_group(format!("ablation_{name}"));
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let setting = Setting::default();
    let queries = workload(&dataset, &setting, 3, 0xab);
    let variants: Vec<(&str, GatConfig)> = vec![
        ("full", GatConfig::default()),
        (
            "no_tas",
            GatConfig {
                use_tas: false,
                ..GatConfig::default()
            },
        ),
        (
            "loose_lb",
            GatConfig {
                tight_lower_bound: false,
                ..GatConfig::default()
            },
        ),
        (
            "lambda4",
            GatConfig {
                lambda: 4,
                ..GatConfig::default()
            },
        ),
        (
            "lambda128",
            GatConfig {
                lambda: 128,
                ..GatConfig::default()
            },
        ),
    ];
    for (label, cfg) in variants {
        let engine = GatEngine::build_with(&dataset, cfg).unwrap();
        group.bench_with_input(BenchmarkId::new("atsq", label), &label, |b, _| {
            b.iter(|| {
                for q in &queries {
                    std::hint::black_box(engine.atsq(&dataset, q, setting.k));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("oatsq", label), &label, |b, _| {
            b.iter(|| {
                for q in &queries {
                    std::hint::black_box(engine.oatsq(&dataset, q, setting.k));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
