//! `experiments` — regenerates every table and figure of the paper's
//! §VII evaluation on the synthetic LA/NY datasets.
//!
//! Usage:
//! ```text
//! experiments [fig3|fig4|fig5|fig6|fig7|fig8|stats|ablation|io|paged|prune|all]
//!             [--scale S] [--queries N] [--full]
//! ```
//!
//! `--scale` (default 0.01) multiplies the Table-IV dataset sizes;
//! `--queries` (default 10) is the number of queries averaged per
//! setting (the paper uses 50); `--full` is shorthand for
//! `--scale 1.0 --queries 50` (expect a long run).

use atsq_bench::{cities, print_table, time_engine, workload, Setting};
use atsq_core::{Engine, GatEngine, QueryEngine};
use atsq_datagen::{generate, CityConfig};
use atsq_gat::GatConfig;
use atsq_types::Dataset;
use std::time::Duration;

struct Opts {
    command: String,
    scale: f64,
    queries: usize,
}

fn parse_args() -> Opts {
    let mut command = "all".to_string();
    let mut scale = 0.01;
    let mut queries = 10usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args[i].parse().expect("--scale takes a number");
            }
            "--queries" => {
                i += 1;
                queries = args[i].parse().expect("--queries takes a count");
            }
            "--full" => {
                scale = 1.0;
                queries = 50;
            }
            cmd if !cmd.starts_with('-') => command = cmd.to_string(),
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }
    Opts {
        command,
        scale,
        queries,
    }
}

const ENGINE_NAMES: [&str; 4] = ["IL", "RT", "IRT", "GAT"];

/// Runs one sweep: for each x value, rebuild the workload and time all
/// four engines; returns one row of average latencies per x value.
fn sweep(
    dataset: &Dataset,
    engines: &[Engine],
    settings: &[(String, Setting)],
    queries: usize,
    ordered: bool,
    seed: u64,
) -> Vec<Vec<Duration>> {
    settings
        .iter()
        .map(|(_, s)| {
            let w = workload(dataset, s, queries, seed);
            engines
                .iter()
                .map(|e| time_engine(e, dataset, &w, s.k, ordered))
                .collect()
        })
        .collect()
}

fn fig3(data: &[(String, Dataset, Vec<Engine>)], queries: usize) {
    let ks = [5usize, 10, 15, 20, 25];
    let settings: Vec<(String, Setting)> = ks
        .iter()
        .map(|&k| {
            (
                k.to_string(),
                Setting {
                    k,
                    ..Setting::default()
                },
            )
        })
        .collect();
    let xs: Vec<String> = settings.iter().map(|(x, _)| x.clone()).collect();
    for (name, dataset, engines) in data {
        for (ordered, label) in [(false, "ATSQ"), (true, "OATSQ")] {
            let rows = sweep(dataset, engines, &settings, queries, ordered, 0x3a);
            print_table(
                &format!("Fig 3 — effect of k ({label} on {name})"),
                "k",
                &xs,
                &ENGINE_NAMES,
                &rows,
            );
        }
    }
}

fn fig4(data: &[(String, Dataset, Vec<Engine>)], queries: usize) {
    let qs = [2usize, 3, 4, 5, 6];
    let settings: Vec<(String, Setting)> = qs
        .iter()
        .map(|&n| {
            (
                n.to_string(),
                Setting {
                    query_points: n,
                    ..Setting::default()
                },
            )
        })
        .collect();
    let xs: Vec<String> = settings.iter().map(|(x, _)| x.clone()).collect();
    for (name, dataset, engines) in data {
        for (ordered, label) in [(false, "ATSQ"), (true, "OATSQ")] {
            let rows = sweep(dataset, engines, &settings, queries, ordered, 0x4a);
            print_table(
                &format!("Fig 4 — effect of |Q| ({label} on {name})"),
                "|Q|",
                &xs,
                &ENGINE_NAMES,
                &rows,
            );
        }
    }
}

fn fig5(data: &[(String, Dataset, Vec<Engine>)], queries: usize) {
    let acts = [1usize, 2, 3, 4, 5];
    let settings: Vec<(String, Setting)> = acts
        .iter()
        .map(|&n| {
            (
                n.to_string(),
                Setting {
                    acts_per_point: n,
                    ..Setting::default()
                },
            )
        })
        .collect();
    let xs: Vec<String> = settings.iter().map(|(x, _)| x.clone()).collect();
    for (name, dataset, engines) in data {
        for (ordered, label) in [(false, "ATSQ"), (true, "OATSQ")] {
            let rows = sweep(dataset, engines, &settings, queries, ordered, 0x5a);
            print_table(
                &format!("Fig 5 — effect of |q.Φ| ({label} on {name})"),
                "|q.Φ|",
                &xs,
                &ENGINE_NAMES,
                &rows,
            );
        }
    }
}

fn fig6(data: &[(String, Dataset, Vec<Engine>)], queries: usize) {
    let diameters = [5.0f64, 10.0, 20.0, 30.0, 50.0];
    let settings: Vec<(String, Setting)> = diameters
        .iter()
        .map(|&d| {
            (
                format!("{d}km"),
                Setting {
                    diameter_km: Some(d),
                    ..Setting::default()
                },
            )
        })
        .collect();
    let xs: Vec<String> = settings.iter().map(|(x, _)| x.clone()).collect();
    for (name, dataset, engines) in data {
        for (ordered, label) in [(false, "ATSQ"), (true, "OATSQ")] {
            let rows = sweep(dataset, engines, &settings, queries, ordered, 0x6a);
            print_table(
                &format!("Fig 6 — effect of δ(Q) ({label} on {name})"),
                "δ(Q)",
                &xs,
                &ENGINE_NAMES,
                &rows,
            );
        }
    }
}

fn fig7(scale: f64, queries: usize) {
    // The paper samples the NY dataset from 10K to ~50K trajectories;
    // we sample the generated NY at the same 1/5..5/5 fractions.
    let full = generate(&CityConfig::ny_like(scale)).expect("generation");
    let n = full.len();
    let fractions = [0.2, 0.4, 0.6, 0.8, 1.0];
    let xs: Vec<String> = fractions
        .iter()
        .map(|f| format!("{}", (n as f64 * f) as usize))
        .collect();
    for (ordered, label) in [(false, "ATSQ"), (true, "OATSQ")] {
        let mut rows = Vec::new();
        for &f in &fractions {
            let sample = full.sample_prefix((n as f64 * f) as usize);
            let engines = Engine::build_all(&sample).expect("engines");
            let s = Setting::default();
            let w = workload(&sample, &s, queries, 0x7a);
            rows.push(
                engines
                    .iter()
                    .map(|e| time_engine(e, &sample, &w, s.k, ordered))
                    .collect(),
            );
        }
        print_table(
            &format!("Fig 7 — scalability in |D| ({label} on NY)"),
            "|D|",
            &xs,
            &ENGINE_NAMES,
            &rows,
        );
    }
}

fn fig8(data: &[(String, Dataset, Vec<Engine>)], queries: usize) {
    let depths = [5u8, 6, 7, 8];
    for (name, dataset, _) in data {
        println!("\n### Fig 8 — partition granularity ({name})");
        println!(
            "{:<12}{:>12}{:>12}{:>14}",
            "#partition", "ATSQ ms", "OATSQ ms", "memory KiB"
        );
        for &d in &depths {
            let engine = GatEngine::build_with(
                dataset,
                GatConfig {
                    grid_level: d,
                    memory_level: d.min(6),
                    ..GatConfig::default()
                },
            )
            .expect("index");
            let gat = Engine::Gat(engine);
            let s = Setting::default();
            let w = workload(dataset, &s, queries, 0x8a);
            let t_atsq = time_engine(&gat, dataset, &w, s.k, false);
            let t_oatsq = time_engine(&gat, dataset, &w, s.k, true);
            let mem = match &gat {
                Engine::Gat(e) => e.index().memory_report().main_memory_bytes(),
                _ => unreachable!(),
            };
            println!(
                "{:<12}{:>12}{:>12}{:>14}",
                format!("{0}x{0}", 1u32 << d),
                atsq_bench::ms(t_atsq),
                atsq_bench::ms(t_oatsq),
                mem / 1024
            );
        }
    }
}

/// Per-engine fetch counters (trajectory reads for the baselines; APL
/// reads + cold HICL page reads for GAT).
fn engine_fetches(e: &Engine) -> u64 {
    match e {
        Engine::Il(il) => il.fetches(),
        Engine::Rt(rt) => rt.fetches(),
        Engine::Irt(irt) => irt.fetches(),
        // GAT: one fetch per APL posting-list read. Cold HICL levels
        // are read in spatially clustered (Z-order-contiguous) pages,
        // not per cell, so they are reported separately rather than
        // charged one seek each.
        Engine::Gat(g) => g.index().stats().snapshot().apl_reads,
        Engine::Sharded(s) => s.per_shard_stats().iter().map(|io| io.apl_reads).sum(),
    }
}

fn reset_fetches(e: &Engine) {
    match e {
        Engine::Il(il) => il.reset_fetches(),
        Engine::Rt(rt) => rt.reset_fetches(),
        Engine::Irt(irt) => irt.reset_fetches(),
        Engine::Gat(g) => g.index().stats().reset(),
        Engine::Sharded(s) => s.reset_stats(),
    }
}

/// Disk cost model of the paper's 2013 testbed: candidate trajectories
/// and cold index pages live on a hard disk, so every fetch pays a
/// random I/O (~0.5 ms seek+read). In-memory wall time plus this
/// charge reconstructs the paper's cost regime; both columns are
/// reported so the substitution is transparent.
const DISK_FETCH_MS: f64 = 0.5;

fn io_model(data: &[(String, Dataset, Vec<Engine>)], queries: usize) {
    for (flavor, common) in [
        ("venue-tag queries", false),
        ("common-category queries", true),
    ] {
        println!("\n### Disk-adjusted cost model — {flavor} (Table V defaults)");
        println!(
            "{:<6}{:>6}{:>12}{:>14}{:>16}  (per query; fetch = {DISK_FETCH_MS} ms)",
            "city", "eng", "wall ms", "fetches", "disk-adj ms"
        );
        for (name, dataset, engines) in data {
            let s = Setting::default();
            let w = atsq_datagen::generate_queries(
                dataset,
                &atsq_datagen::QueryGenConfig {
                    query_points: s.query_points,
                    acts_per_point: s.acts_per_point,
                    diameter_km: s.diameter_km,
                    common_acts_only: common,
                    seed: 0x10,
                },
                queries,
            );
            for e in engines {
                reset_fetches(e);
                let wall = time_engine(e, dataset, &w, s.k, false);
                let fetches = engine_fetches(e) as f64 / w.len() as f64;
                let wall_ms = wall.as_secs_f64() * 1e3;
                let adj = wall_ms + fetches * DISK_FETCH_MS;
                println!(
                    "{:<6}{:>6}{:>12.2}{:>14.1}{:>16.2}",
                    name,
                    e.name(),
                    wall_ms,
                    fetches,
                    adj
                );
            }
        }
    }
}

/// Measured-I/O experiment (ours): the same GAT queries with the APL on
/// real pages behind LRU buffer pools of decreasing size. Misses are
/// *measured* page faults, so the disk-adjusted column here validates
/// the simulated counter model of [`io_model`].
fn paged_io(data: &[(String, Dataset, Vec<Engine>)], queries: usize) {
    use atsq_core::{PagedAplConfig, PagedBacking};
    println!("\n### Paged APL + cold HICL — measured page traffic (GAT, Table V defaults)");
    println!(
        "{:<6}{:>12}{:>12}{:>12}{:>12}{:>12}{:>12}{:>16}  (per query; fetch = {DISK_FETCH_MS} ms)",
        "city", "pool", "wall ms", "hits", "misses", "hit%", "hicl miss", "disk-adj ms"
    );
    for (name, dataset, engines) in data {
        let s = Setting::default();
        let w = workload(dataset, &s, queries, 0x10);
        // Reference results from the in-memory engine line-up.
        let mem_gat = engines
            .iter()
            .find(|e| e.name() == "GAT")
            .expect("GAT engine present");
        for frames in [usize::MAX, 256, 32, 4] {
            let label = if frames == usize::MAX {
                "all".to_string()
            } else {
                frames.to_string()
            };
            let pool_frames = if frames == usize::MAX {
                1 << 20
            } else {
                frames
            };
            let engine = GatEngine::build_paged(
                dataset,
                GatConfig::default(),
                &PagedAplConfig {
                    pool_frames,
                    backing: PagedBacking::Memory,
                    ..PagedAplConfig::default()
                },
            )
            .expect("paged build");
            let t0 = std::time::Instant::now();
            for q in &w {
                let got = engine.atsq(dataset, q, s.k);
                debug_assert_eq!(got, mem_gat.atsq(dataset, q, s.k));
                std::hint::black_box(got);
            }
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3 / w.len().max(1) as f64;
            let pool = engine
                .index()
                .apl()
                .pool_stats()
                .expect("paged backend has pool stats");
            let hicl_misses = engine
                .index()
                .cold_hicl()
                .map_or(0, |c| c.pool_stats().misses);
            let per_query = |v: u64| v as f64 / w.len().max(1) as f64;
            let adj = wall_ms + per_query(pool.misses + hicl_misses) * DISK_FETCH_MS;
            println!(
                "{:<6}{:>12}{:>12.2}{:>12.1}{:>12.1}{:>12.1}{:>12.1}{:>16.2}",
                name,
                label,
                wall_ms,
                per_query(pool.hits),
                per_query(pool.misses),
                pool.hit_ratio() * 100.0,
                per_query(hicl_misses),
                adj
            );
        }
    }
}

/// Pruning-power report (ours): the work counters behind the latency
/// figures. The paper's §V claim — GAT prunes by location and activity
/// simultaneously — shows up as fewer candidates *and* fewer distance
/// evaluations than any baseline at the same answer quality.
fn prune_report(data: &[(String, Dataset, Vec<Engine>)], queries: usize) {
    use atsq_core::Profiled;
    for (ordered, label) in [(false, "ATSQ"), (true, "OATSQ")] {
        println!("\n### Pruning power — {label} (Table V defaults, per query)");
        println!(
            "{:<6}{:>6}{:>12}{:>12}{:>12}{:>12}{:>12}{:>10}",
            "city",
            "eng",
            "candidates",
            "dist evals",
            "TAS-pruned",
            "TAS-fp",
            "APL reads",
            "prune%"
        );
        for (name, dataset, engines) in data {
            let s = Setting::default();
            let w = workload(dataset, &s, queries, 0x9e);
            for e in engines {
                e.reset_counters();
                for q in &w {
                    if ordered {
                        std::hint::black_box(e.oatsq(dataset, q, s.k));
                    } else {
                        std::hint::black_box(e.atsq(dataset, q, s.k));
                    }
                }
                let c = e.counters();
                let per = |v: u64| v as f64 / w.len().max(1) as f64;
                println!(
                    "{:<6}{:>6}{:>12.1}{:>12.1}{:>12.1}{:>12.1}{:>12.1}{:>10.1}",
                    name,
                    e.name(),
                    per(c.candidates),
                    per(c.distance_evals),
                    per(c.tas_pruned),
                    per(c.tas_false_positives),
                    per(c.apl_reads),
                    c.prune_ratio() * 100.0
                );
            }
        }
    }
}

fn stats(scale: f64) {
    println!("\n### Table IV — dataset statistics (synthetic, scale {scale})");
    for (name, dataset) in cities(scale) {
        println!("\n[{name}]");
        println!("{}", dataset.stats());
    }
}

fn ablation(data: &[(String, Dataset, Vec<Engine>)], queries: usize) {
    println!("\n### Ablation — GAT design choices");
    let variants: Vec<(&str, GatConfig)> = vec![
        ("full", GatConfig::default()),
        (
            "no-TAS",
            GatConfig {
                use_tas: false,
                ..GatConfig::default()
            },
        ),
        (
            "loose-LB",
            GatConfig {
                tight_lower_bound: false,
                ..GatConfig::default()
            },
        ),
        (
            "λ=4",
            GatConfig {
                lambda: 4,
                ..GatConfig::default()
            },
        ),
        (
            "λ=128",
            GatConfig {
                lambda: 128,
                ..GatConfig::default()
            },
        ),
    ];
    for (name, dataset, _) in data {
        println!("\n[{name}]");
        println!(
            "{:<10}{:>12}{:>12}{:>14}{:>12}",
            "variant", "ATSQ ms", "OATSQ ms", "candidates", "distances"
        );
        let s = Setting::default();
        let w = workload(dataset, &s, queries, 0xab);
        for (label, cfg) in &variants {
            let engine = GatEngine::build_with(dataset, *cfg).expect("index");
            let gat = Engine::Gat(engine);
            let t_atsq = time_engine(&gat, dataset, &w, s.k, false);
            let t_oatsq = time_engine(&gat, dataset, &w, s.k, true);
            let snap = match &gat {
                Engine::Gat(e) => e.index().stats().snapshot(),
                _ => unreachable!(),
            };
            println!(
                "{:<10}{:>12}{:>12}{:>14}{:>12}",
                label,
                atsq_bench::ms(t_atsq),
                atsq_bench::ms(t_oatsq),
                snap.candidates_retrieved,
                snap.distances_computed
            );
        }
    }
}

fn main() {
    let opts = parse_args();
    println!(
        "reproduction of ICDE'13 experiments — scale {}, {} queries/setting",
        opts.scale, opts.queries
    );

    let needs_engines = matches!(
        opts.command.as_str(),
        "fig3" | "fig4" | "fig5" | "fig6" | "fig8" | "ablation" | "io" | "paged" | "prune" | "all"
    );
    let data: Vec<(String, Dataset, Vec<Engine>)> = if needs_engines {
        cities(opts.scale)
            .into_iter()
            .map(|(name, d)| {
                let engines = Engine::build_all(&d).expect("engines");
                (name, d, engines)
            })
            .collect()
    } else {
        Vec::new()
    };

    match opts.command.as_str() {
        "fig3" => fig3(&data, opts.queries),
        "fig4" => fig4(&data, opts.queries),
        "fig5" => fig5(&data, opts.queries),
        "fig6" => fig6(&data, opts.queries),
        "fig7" => fig7(opts.scale, opts.queries),
        "fig8" => fig8(&data, opts.queries),
        "stats" => stats(opts.scale),
        "ablation" => ablation(&data, opts.queries),
        "io" => io_model(&data, opts.queries),
        "paged" => paged_io(&data, opts.queries),
        "prune" => prune_report(&data, opts.queries),
        "all" => {
            stats(opts.scale);
            fig3(&data, opts.queries);
            fig4(&data, opts.queries);
            fig5(&data, opts.queries);
            fig6(&data, opts.queries);
            fig7(opts.scale, opts.queries);
            fig8(&data, opts.queries);
            ablation(&data, opts.queries);
            io_model(&data, opts.queries);
            paged_io(&data, opts.queries);
            prune_report(&data, opts.queries);
        }
        other => panic!("unknown command {other}"),
    }
}
