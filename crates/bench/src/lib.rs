//! Shared benchmark harness: datasets, workloads and timing loops for
//! the §VII reproduction.
//!
//! The paper's protocol (§VII-A): for every parameter setting, run 50
//! randomly generated queries and report the average running time.
//! Defaults here follow Table V — `k = 9`, `|Q| = 4`, `|q.Φ| = 3`,
//! `δ(Q) = 10 km`, grid `d = 8` with levels 1–6 in memory — with the
//! dataset scale and query count dialled down so the full suite runs
//! in minutes; pass `--full` to the `experiments` binary (or set
//! higher scales programmatically) for paper-scale runs.

use atsq_core::{Engine, QueryEngine};
use atsq_datagen::{generate, generate_queries, CityConfig, QueryGenConfig};
use atsq_types::{Dataset, Query};
use std::time::{Duration, Instant};

/// Table V defaults.
pub const DEFAULT_K: usize = 9;
/// Table V: number of query points.
pub const DEFAULT_QPOINTS: usize = 4;
/// Table V: activities per query location.
pub const DEFAULT_ACTS: usize = 3;
/// Table V: query diameter in km.
pub const DEFAULT_DIAMETER: f64 = 10.0;

/// One experiment's workload description.
#[derive(Debug, Clone, Copy)]
pub struct Setting {
    /// Result-set size `k`.
    pub k: usize,
    /// Number of query locations `|Q|`.
    pub query_points: usize,
    /// Activities per location `|q.Φ|`.
    pub acts_per_point: usize,
    /// Target diameter `δ(Q)` in km (`None` = unconstrained).
    pub diameter_km: Option<f64>,
}

impl Default for Setting {
    fn default() -> Self {
        Setting {
            k: DEFAULT_K,
            query_points: DEFAULT_QPOINTS,
            acts_per_point: DEFAULT_ACTS,
            diameter_km: Some(DEFAULT_DIAMETER),
        }
    }
}

/// Generates the two evaluation datasets at the given scale.
pub fn cities(scale: f64) -> Vec<(String, Dataset)> {
    [CityConfig::la_like(scale), CityConfig::ny_like(scale)]
        .into_iter()
        .map(|c| {
            let name = c.name.clone();
            (name, generate(&c).expect("generation"))
        })
        .collect()
}

/// Generates a workload per the §VII-A protocol.
pub fn workload(dataset: &Dataset, setting: &Setting, n: usize, seed: u64) -> Vec<Query> {
    generate_queries(
        dataset,
        &QueryGenConfig {
            query_points: setting.query_points,
            acts_per_point: setting.acts_per_point,
            diameter_km: setting.diameter_km,
            common_acts_only: false,
            seed,
        },
        n,
    )
}

/// Average per-query latency of one engine over a workload.
pub fn time_engine(
    engine: &Engine,
    dataset: &Dataset,
    queries: &[Query],
    k: usize,
    ordered: bool,
) -> Duration {
    let t0 = Instant::now();
    for q in queries {
        if ordered {
            std::hint::black_box(engine.oatsq(dataset, q, k));
        } else {
            std::hint::black_box(engine.atsq(dataset, q, k));
        }
    }
    t0.elapsed() / queries.len().max(1) as u32
}

/// Formats a duration in fractional milliseconds.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Prints one result table in the paper's figure layout: one row per
/// x-axis value, one column per engine.
pub fn print_table(
    title: &str,
    x_label: &str,
    xs: &[String],
    engines: &[&str],
    rows: &[Vec<Duration>],
) {
    println!("\n### {title}");
    print!("{x_label:<10}");
    for e in engines {
        print!("{e:>10}");
    }
    println!("  (avg ms/query)");
    for (x, row) in xs.iter().zip(rows) {
        print!("{x:<10}");
        for d in row {
            print!("{:>10}", ms(*d));
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_matches_setting() {
        let (_, d) = cities(0.001).remove(0);
        let s = Setting::default();
        let w = workload(&d, &s, 3, 1);
        assert_eq!(w.len(), 3);
        for q in &w {
            assert_eq!(q.len(), s.query_points);
            assert!((q.diameter() - DEFAULT_DIAMETER).abs() < 1e-9);
        }
    }

    #[test]
    fn time_engine_runs() {
        let (_, d) = cities(0.001).remove(0);
        let engines = Engine::build_all(&d).unwrap();
        let w = workload(&d, &Setting::default(), 2, 2);
        for e in &engines {
            let t = time_engine(e, &d, &w, 3, false);
            assert!(t.as_nanos() > 0);
        }
    }
}
