//! Newline-delimited-JSON TCP front-end for a [`ServiceHandle`].
//!
//! One thread accepts connections; each connection gets a reader
//! thread that decodes request lines ([`crate::wire`]), submits them
//! to the service, and writes one response line per request, in
//! order. The closed loop per connection means a client's concurrency
//! equals its connection count — which is exactly how the matching
//! [`crate::loadgen`] drives it.

use crate::service::ServiceHandle;
use crate::wire;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

/// A running TCP server wrapping a service.
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections against `handle`.
    pub fn bind(handle: ServiceHandle, addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = stop.clone();
        let accept_thread = thread::Builder::new()
            .name("atsq-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    // ordering: Relaxed — the stop flag carries no
                    // dependent data; the throwaway connection in
                    // `shutdown` guarantees the loop wakes to observe
                    // it, and `join` synchronizes the final state.
                    if accept_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // One-line request/response turns: Nagle plus
                    // delayed ACKs would add ~40 ms per turn.
                    let _ = stream.set_nodelay(true);
                    let handle = handle.clone();
                    // Connection threads are detached; they exit when
                    // the peer closes its half of the connection.
                    let _ = thread::Builder::new()
                        .name("atsq-conn".into())
                        .spawn(move || serve_connection(stream, &handle));
                }
            })?;
        Ok(Server {
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting new connections and joins the accept thread.
    /// Established connections finish on their own.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        // ordering: Relaxed — pure stop flag; nothing is published
        // through it, and the connect below forces the accept loop
        // around to the load.
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a throwaway connection. A
        // wildcard bind address (0.0.0.0 / ::) is not connectable on
        // every platform, so aim at loopback in that case.
        let mut target = self.local_addr;
        if target.ip().is_unspecified() {
            target.set_ip(match target {
                SocketAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                SocketAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
            });
        }
        let _ = TcpStream::connect(target);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown();
        }
    }
}

/// Hard cap on one request line. Admission control only engages after
/// a full line is decoded, so the line reader itself must bound memory
/// or a newline-less client could grow the buffer without limit.
const MAX_LINE_BYTES: u64 = 1 << 20;

fn serve_connection(stream: TcpStream, handle: &ServiceHandle) {
    let Ok(peer) = stream.try_clone() else { return };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(peer);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        buf.clear();
        match std::io::Read::take(&mut reader, MAX_LINE_BYTES).read_until(b'\n', &mut buf) {
            Ok(0) => break, // EOF
            Err(_) => break,
            Ok(_) => {}
        }
        if buf.last() != Some(&b'\n') && buf.len() as u64 >= MAX_LINE_BYTES {
            // Over-long line: answer once, then drop the connection —
            // the rest of the stream is the same unframed request.
            let reply = wire::encode_error("request line exceeds 1 MiB").to_json();
            let _ = writer.write_all(reply.as_bytes());
            let _ = writer.write_all(b"\n");
            let _ = writer.flush();
            break;
        }
        let Ok(line) = std::str::from_utf8(&buf) else {
            let reply = wire::encode_error("request line is not UTF-8").to_json();
            if writer
                .write_all(reply.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .and_then(|()| writer.flush())
                .is_err()
            {
                break;
            }
            continue;
        };
        if line.trim().is_empty() {
            continue;
        }
        let reply = respond(line.trim_end_matches(['\n', '\r']), handle);
        if writer
            .write_all(reply.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
    }
}

fn respond(line: &str, handle: &ServiceHandle) -> String {
    let envelope = match wire::decode_envelope(line) {
        Ok(e) => e,
        Err(e) => return wire::encode_error(&e.to_string()).to_json(),
    };
    match envelope {
        // A query line: resolve the city first — the lease pins the
        // city resident and supplies the vocabulary the stops decode
        // against — then finish decoding and submit under that lease.
        wire::Envelope::Query { city, value } => {
            let lease = match handle.resolve_city(city.as_deref()) {
                Ok(lease) => lease,
                Err(e) => {
                    return wire::encode_submit_error(&crate::service::SubmitError::City(e))
                        .to_json()
                }
            };
            let (request, deadline) = match wire::decode_query_request(&value, lease.dataset()) {
                Ok(decoded) => decoded,
                Err(e) => return wire::encode_error(&e.to_string()).to_json(),
            };
            match handle.submit_leased(lease, request, deadline) {
                Err(e) => wire::encode_submit_error(&e).to_json(),
                Ok(ticket) => {
                    let id = ticket.request_id();
                    match ticket.wait() {
                        Some(response) => {
                            let t0 = std::time::Instant::now();
                            let reply = wire::encode_response(&response, Some(id)).to_json();
                            handle.record_serialize(t0.elapsed());
                            reply
                        }
                        None => wire::encode_error("service stopped").to_json(),
                    }
                }
            }
        }
        wire::Envelope::Control(message) => respond_control(message, handle),
    }
}

/// Answers the dataset-free control ops: liveness, stats, metrics,
/// slow log, and the multi-tenant city admin surface.
fn respond_control(message: wire::ClientMessage, handle: &ServiceHandle) -> String {
    match message {
        wire::ClientMessage::Ping => crate::json::obj(vec![
            ("status", crate::json::Value::Str("ok".into())),
            ("pong", crate::json::Value::Bool(true)),
        ])
        .to_json(),
        wire::ClientMessage::Stats => wire::encode_stats(&handle.stats()).to_json(),
        wire::ClientMessage::Metrics => wire::encode_metrics(&handle.metrics_text()).to_json(),
        wire::ClientMessage::Slowlog => wire::encode_slowlog(&handle.slowlog()).to_json(),
        wire::ClientMessage::Cities => wire::encode_cities(&handle.cities()).to_json(),
        wire::ClientMessage::CityLoad(city) => match handle.city_load(&city) {
            Ok(cold) => wire::encode_city_ack(&city, Some(cold)).to_json(),
            Err(e) => wire::encode_error(&e.to_string()).to_json(),
        },
        wire::ClientMessage::CityUnload(city) => match handle.city_unload(&city) {
            Ok(()) => wire::encode_city_ack(&city, None).to_json(),
            Err(e) => wire::encode_error(&e.to_string()).to_json(),
        },
        // `decode_envelope` never wraps a query in `Control`; answer
        // defensively rather than panicking on a hot path.
        wire::ClientMessage::Query(..) => {
            wire::encode_error("internal: query routed as control").to_json()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;
    use crate::service::{Service, ServiceConfig};
    use crate::wire::{decode_server_reply, encode_request, ServerReply};
    use atsq_core::QueryEngine;
    use atsq_datagen::{generate, generate_queries, CityConfig, QueryGenConfig};

    fn lines(stream: &TcpStream) -> BufReader<TcpStream> {
        BufReader::new(stream.try_clone().unwrap())
    }

    #[test]
    fn tcp_roundtrip_matches_direct_engine() {
        let dataset = generate(&CityConfig::tiny(19)).unwrap();
        let queries = generate_queries(&dataset, &QueryGenConfig::default(), 4);
        let service = Service::build(
            dataset,
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let handle = service.handle();
        let server = Server::bind(handle.clone(), "127.0.0.1:0").unwrap();

        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = lines(&stream);
        for q in &queries {
            let request = Request::Atsq {
                query: q.clone(),
                k: 5,
            };
            let line = encode_request(&request, None).to_json();
            stream.write_all(line.as_bytes()).unwrap();
            stream.write_all(b"\n").unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            let (request_id, decoded) = crate::wire::decode_server_reply_full(&reply).unwrap();
            assert!(request_id.is_some(), "query replies echo a request id");
            match decoded {
                ServerReply::Ok { results, .. } => {
                    let direct = handle.engine().atsq(&handle.dataset(), q, 5);
                    assert_eq!(results.len(), direct.len());
                    for (got, want) in results.iter().zip(&direct) {
                        assert_eq!(got.trajectory, want.trajectory);
                        assert!((got.distance - want.distance).abs() < 1e-9);
                    }
                }
                other => panic!("unexpected {other:?}"),
            }
        }

        // Stats over the wire.
        stream.write_all(b"{\"op\":\"stats\"}\n").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        let stats = crate::json::parse(reply.trim()).unwrap();
        assert_eq!(
            stats
                .get("completed")
                .and_then(crate::json::Value::as_usize),
            Some(queries.len())
        );

        // Metrics over the wire: the Prometheus page rides in a JSON
        // envelope and carries the request counters just exercised.
        stream.write_all(b"{\"op\":\"metrics\"}\n").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        let page = crate::json::parse(reply.trim()).unwrap();
        let text = page
            .get("metrics")
            .and_then(crate::json::Value::as_str)
            .unwrap();
        assert!(
            text.contains(&format!(
                "atsq_requests_completed_total {}\n",
                queries.len()
            )),
            "{text}"
        );

        // Slow log over the wire: decodes to an entries array.
        stream.write_all(b"{\"op\":\"slowlog\"}\n").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        let log = crate::json::parse(reply.trim()).unwrap();
        assert!(log
            .get("entries")
            .and_then(crate::json::Value::as_arr)
            .is_some());

        // Garbage gets an error response, not a dropped connection.
        stream.write_all(b"garbage\n").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(matches!(
            decode_server_reply(&reply).unwrap(),
            ServerReply::Error(_)
        ));

        drop(stream);
        server.stop();
        service.shutdown();
    }
}
