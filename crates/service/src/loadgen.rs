//! Closed-loop load generator for the TCP front-end.
//!
//! `concurrency` client threads each hold one connection and keep one
//! request in flight (closed loop), drawing queries from a fixed pool
//! with **Zipf-skewed reuse** — the skew models real traffic where
//! popular queries repeat, which is what exercises the result cache.
//! With `verify` on, every response is checked against direct
//! [`GatEngine`](atsq_core::GatEngine) answers computed locally.
//!
//! Multi-city servers are driven with [`run_loadgen_cities`]: each
//! workload names a city and carries that city's dataset (its own
//! query pool and reference engine), and clients spread requests
//! across the cities round-robin — the access pattern that exercises
//! lazy loads and budget eviction server-side.

use crate::stats::percentile_sorted;
use crate::wire::{decode_server_reply_full, encode_request_for_city, ServerReply};
use crate::Request;
use atsq_core::{GatEngine, QueryEngine};
use atsq_datagen::{generate_queries, QueryGenConfig, Zipf};
use atsq_types::{Dataset, Query, QueryResult};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Workload parameters for [`run_loadgen`].
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent client connections (closed loop each).
    pub concurrency: usize,
    /// Total requests across all clients.
    pub requests: usize,
    /// Top-k per request.
    pub k: usize,
    /// Distinct queries in the pool.
    pub pool: usize,
    /// Zipf exponent of query reuse (0 = uniform, 1 ≈ web traffic).
    pub zipf_s: f64,
    /// Stops per query.
    pub query_points: usize,
    /// Activities per stop.
    pub acts_per_point: usize,
    /// Optional per-request deadline sent to the server.
    pub deadline_ms: Option<u64>,
    /// Check every response against a locally built engine.
    pub verify: bool,
    /// Workload RNG seed.
    pub seed: u64,
    /// When set, write one JSON line per request — sequence number,
    /// server-assigned request id, status, cached flag and latency —
    /// to this path after the run.
    pub latency_out: Option<std::path::PathBuf>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            concurrency: 8,
            requests: 1000,
            k: 9,
            pool: 100,
            zipf_s: 1.0,
            query_points: 3,
            acts_per_point: 2,
            deadline_ms: None,
            verify: false,
            seed: 0x10AD,
            latency_out: None,
        }
    }
}

/// Outcome of one load-generation run.
#[derive(Debug, Clone, Default)]
pub struct LoadgenReport {
    /// Requests sent.
    pub sent: u64,
    /// `ok` responses.
    pub ok: u64,
    /// `ok` responses served from the server's cache.
    pub cached: u64,
    /// `expired` responses (deadline passed while queued).
    pub expired: u64,
    /// `rejected` responses (queue overflow).
    pub rejected: u64,
    /// Protocol/transport errors.
    pub errors: u64,
    /// Responses that disagreed with the local engine (verify mode).
    pub incorrect: u64,
    /// Wall-clock time of the run.
    pub wall: Duration,
    /// Completed (`ok`) requests per wall-clock second.
    pub qps: f64,
    /// Client-observed median latency.
    pub p50_ms: f64,
    /// Client-observed 99th-percentile latency.
    pub p99_ms: f64,
    /// The server's own cache hit rate, read via the `stats` op.
    pub server_cache_hit_rate: Option<f64>,
}

impl std::fmt::Display for LoadgenReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "sent {}  ok {} ({} cached)  expired {}  rejected {}  errors {}  incorrect {}",
            self.sent,
            self.ok,
            self.cached,
            self.expired,
            self.rejected,
            self.errors,
            self.incorrect
        )?;
        write!(
            f,
            "wall {:.2}s  qps {:.1}  p50 {:.2} ms  p99 {:.2} ms",
            self.wall.as_secs_f64(),
            self.qps,
            self.p50_ms,
            self.p99_ms
        )?;
        if let Some(rate) = self.server_cache_hit_rate {
            write!(f, "  server cache hit rate {:.1}%", rate * 100.0)?;
        }
        Ok(())
    }
}

struct ThreadTally {
    report: LoadgenReport,
    latencies_ms: Vec<f64>,
    /// Per-request JSON record lines, collected only when
    /// [`LoadgenConfig::latency_out`] is set.
    records: Vec<String>,
}

/// Formats one latency-record line: the client-side sequence number,
/// the server's echoed request id (absent when the server did not
/// attach one), terminal status, cached flag and client latency.
fn record_line(
    seq: usize,
    request_id: Option<u64>,
    status: &str,
    cached: bool,
    latency_ms: f64,
) -> String {
    use crate::json::{obj, Value};
    let mut members = vec![("seq", Value::Num(seq as f64))];
    if let Some(id) = request_id {
        members.push(("request_id", Value::Num(id as f64)));
    }
    members.push(("status", Value::Str(status.into())));
    members.push(("cached", Value::Bool(cached)));
    members.push(("latency_ms", Value::Num(latency_ms)));
    obj(members).to_json()
}

/// One city's slice of a multi-city workload: which city to address
/// on the wire (`None` = the server's default) and the dataset backing
/// it, from which the query pool and reference answers derive.
#[derive(Debug, Clone)]
pub struct CityWorkload {
    /// `city` member sent on each request; `None` omits it.
    pub city: Option<String>,
    /// The dataset the named city serves.
    pub dataset: Dataset,
}

/// A city workload with its pool and reference answers materialised.
struct PreparedWorkload {
    city: Option<String>,
    pool: Vec<Query>,
    expected: Option<Vec<Vec<QueryResult>>>,
}

/// Runs the closed-loop workload against `addr`. The dataset must be
/// the one the server is serving — it seeds the query pool and, with
/// `verify`, the local reference engine.
pub fn run_loadgen(
    addr: &str,
    dataset: &Dataset,
    cfg: &LoadgenConfig,
) -> std::io::Result<LoadgenReport> {
    run_loadgen_cities(
        addr,
        &[CityWorkload {
            city: None,
            dataset: dataset.clone(),
        }],
        cfg,
    )
}

/// Runs the closed-loop workload across several cities of one server.
/// Request `i` goes to city `i % workloads.len()` (round-robin), with
/// Zipf-skewed query reuse inside each city's own pool; with `verify`,
/// each city's responses are checked against a reference engine built
/// over *that city's* dataset.
pub fn run_loadgen_cities(
    addr: &str,
    workloads: &[CityWorkload],
    cfg: &LoadgenConfig,
) -> std::io::Result<LoadgenReport> {
    assert!(cfg.concurrency >= 1 && cfg.requests >= 1 && cfg.pool >= 1);
    assert!(!workloads.is_empty(), "at least one city workload");
    let prepared: Vec<PreparedWorkload> = workloads
        .iter()
        .map(|w| {
            let pool: Vec<Query> = generate_queries(
                &w.dataset,
                &QueryGenConfig {
                    query_points: cfg.query_points,
                    acts_per_point: cfg.acts_per_point,
                    diameter_km: None,
                    common_acts_only: false,
                    seed: cfg.seed,
                },
                cfg.pool,
            );
            // Reference answers, computed once per pool entry.
            let expected: Option<Vec<Vec<QueryResult>>> = cfg.verify.then(|| {
                let engine = GatEngine::build(&w.dataset).expect("reference engine build");
                pool.iter()
                    .map(|q| engine.atsq(&w.dataset, q, cfg.k))
                    .collect()
            });
            PreparedWorkload {
                city: w.city.clone(),
                pool,
                expected,
            }
        })
        .collect();
    let zipf = Zipf::new(cfg.pool, cfg.zipf_s);

    let issued = AtomicUsize::new(0);
    let failures: Mutex<Option<std::io::Error>> = Mutex::new(None);
    let t0 = Instant::now();
    let tallies: Vec<ThreadTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.concurrency)
            .map(|tid| {
                let prepared = &prepared;
                let zipf = &zipf;
                let issued = &issued;
                let failures = &failures;
                scope.spawn(move || {
                    match client_loop(addr, cfg, tid as u64, prepared, zipf, issued) {
                        Ok(tally) => tally,
                        Err(e) => {
                            *failures.lock() = Some(e);
                            ThreadTally {
                                report: LoadgenReport::default(),
                                latencies_ms: Vec::new(),
                                records: Vec::new(),
                            }
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    if let Some(e) = failures.lock().take() {
        return Err(e);
    }
    let wall = t0.elapsed();

    let mut report = LoadgenReport::default();
    let mut latencies: Vec<f64> = Vec::new();
    let mut records: Vec<String> = Vec::new();
    for t in tallies {
        report.sent += t.report.sent;
        report.ok += t.report.ok;
        report.cached += t.report.cached;
        report.expired += t.report.expired;
        report.rejected += t.report.rejected;
        report.errors += t.report.errors;
        report.incorrect += t.report.incorrect;
        latencies.extend(t.latencies_ms);
        records.extend(t.records);
    }
    if let Some(path) = &cfg.latency_out {
        records.sort_unstable_by_key(|line| {
            crate::json::parse(line)
                .ok()
                .and_then(|v| v.get("seq").and_then(crate::json::Value::as_usize))
                .unwrap_or(usize::MAX)
        });
        let mut body = records.join("\n");
        if !body.is_empty() {
            body.push('\n');
        }
        std::fs::write(path, body)?;
    }
    report.wall = wall;
    report.qps = report.ok as f64 / wall.as_secs_f64().max(1e-9);
    // total_cmp is a total order (NaN included); a partial_cmp
    // fallback would silently leave a NaN-bearing slice mis-sorted.
    latencies.sort_unstable_by(f64::total_cmp);
    // Nearest-rank percentiles — the same convention the server's
    // histogram stats use, so client and server numbers compare.
    report.p50_ms = percentile_sorted(&latencies, 0.50);
    report.p99_ms = percentile_sorted(&latencies, 0.99);
    report.server_cache_hit_rate = fetch_server_hit_rate(addr).ok();
    Ok(report)
}

fn client_loop(
    addr: &str,
    cfg: &LoadgenConfig,
    tid: u64,
    workloads: &[PreparedWorkload],
    zipf: &Zipf,
    issued: &AtomicUsize,
) -> std::io::Result<ThreadTally> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut stream = stream;
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (0x9E37 + tid * 0x1000_0001));
    let mut tally = ThreadTally {
        report: LoadgenReport::default(),
        latencies_ms: Vec::new(),
        records: Vec::new(),
    };
    loop {
        // ordering: Relaxed — work-stealing ticket counter; atomicity
        // gives each client a distinct sequence number and nothing
        // else is published through it.
        let seq = issued.fetch_add(1, Ordering::Relaxed);
        if seq >= cfg.requests {
            break;
        }
        // Round-robin across cities; Zipf-skewed reuse within a city.
        let workload = &workloads[seq % workloads.len()];
        let qi = zipf.sample(&mut rng);
        let request = Request::Atsq {
            query: workload.pool[qi].clone(),
            k: cfg.k,
        };
        let line = encode_request_for_city(
            &request,
            cfg.deadline_ms.map(Duration::from_millis),
            workload.city.as_deref(),
        )
        .to_json();
        let sent_at = Instant::now();
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")?;
        let mut reply = String::new();
        if reader.read_line(&mut reply)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        tally.report.sent += 1;
        let latency_ms = sent_at.elapsed().as_secs_f64() * 1e3;
        let decoded = decode_server_reply_full(reply.trim());
        let (request_id, cached, status) = match &decoded {
            Ok((id, ServerReply::Ok { cached, .. })) => (*id, *cached, "ok"),
            Ok((id, ServerReply::Expired)) => (*id, false, "expired"),
            Ok((id, ServerReply::Rejected(_))) => (*id, false, "rejected"),
            Ok((id, ServerReply::Error(_))) => (*id, false, "error"),
            Err(_) => (None, false, "error"),
        };
        match decoded {
            Ok((_, ServerReply::Ok { results, cached: c })) => {
                tally.report.ok += 1;
                if c {
                    tally.report.cached += 1;
                }
                tally.latencies_ms.push(latency_ms);
                if let Some(expected) = &workload.expected {
                    if !results_match(&results, &expected[qi]) {
                        tally.report.incorrect += 1;
                    }
                }
            }
            Ok((_, ServerReply::Expired)) => tally.report.expired += 1,
            Ok((_, ServerReply::Rejected(_))) => tally.report.rejected += 1,
            Ok((_, ServerReply::Error(_))) | Err(_) => tally.report.errors += 1,
        }
        if cfg.latency_out.is_some() {
            tally
                .records
                .push(record_line(seq, request_id, status, cached, latency_ms));
        }
    }
    Ok(tally)
}

fn results_match(got: &[QueryResult], want: &[QueryResult]) -> bool {
    got.len() == want.len()
        && got
            .iter()
            .zip(want)
            .all(|(g, w)| g.trajectory == w.trajectory && (g.distance - w.distance).abs() < 1e-9)
}

fn fetch_server_hit_rate(addr: &str) -> std::io::Result<f64> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    stream.write_all(b"{\"op\":\"stats\"}\n")?;
    let mut reply = String::new();
    reader.read_line(&mut reply)?;
    crate::json::parse(reply.trim())
        .ok()
        .and_then(|v| v.get("cache_hit_rate").and_then(crate::json::Value::as_f64))
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad stats reply"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;
    use crate::service::{Service, ServiceConfig};
    use atsq_datagen::{generate, CityConfig};

    /// The acceptance-criteria scenario in miniature: loadgen at
    /// concurrency 8 against a generated city, all responses verified
    /// against the direct engine, zero incorrect.
    #[test]
    fn closed_loop_run_is_correct_and_hits_cache() {
        let dataset = generate(&CityConfig::tiny(42)).unwrap();
        let service = Service::build(
            dataset.clone(),
            ServiceConfig {
                workers: 4,
                batch_size: 8,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let server = Server::bind(service.handle(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr().to_string();

        let report = run_loadgen(
            &addr,
            &dataset,
            &LoadgenConfig {
                concurrency: 8,
                requests: 300,
                pool: 20,
                k: 5,
                verify: true,
                ..LoadgenConfig::default()
            },
        )
        .unwrap();

        assert_eq!(report.sent, 300);
        assert_eq!(report.ok, 300);
        assert_eq!(report.incorrect, 0, "{report}");
        assert_eq!(report.errors, 0, "{report}");
        // 300 Zipf-skewed draws over 20 queries must repeat.
        assert!(report.cached > 0, "{report}");
        assert!(report.qps > 0.0);
        assert!(report.p50_ms <= report.p99_ms);
        assert!(report.server_cache_hit_rate.unwrap() > 0.0, "{report}");

        server.stop();
        service.shutdown();
    }

    /// `latency_out` writes one parseable record per request, in
    /// sequence order, each carrying a distinct server request id.
    #[test]
    fn latency_out_writes_per_request_records() {
        let dataset = generate(&CityConfig::tiny(7)).unwrap();
        let service = Service::build(
            dataset.clone(),
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let server = Server::bind(service.handle(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr().to_string();
        let path =
            std::env::temp_dir().join(format!("atsq-latency-test-{}.jsonl", std::process::id()));

        let report = run_loadgen(
            &addr,
            &dataset,
            &LoadgenConfig {
                concurrency: 2,
                requests: 40,
                pool: 5,
                k: 3,
                latency_out: Some(path.clone()),
                ..LoadgenConfig::default()
            },
        )
        .unwrap();

        let body = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len() as u64, report.sent);
        let mut ids = std::collections::HashSet::new();
        for (i, line) in lines.iter().enumerate() {
            let v = crate::json::parse(line).unwrap();
            assert_eq!(
                v.get("seq").and_then(crate::json::Value::as_usize),
                Some(i),
                "records are merged in sequence order"
            );
            assert_eq!(
                v.get("status").and_then(crate::json::Value::as_str),
                Some("ok")
            );
            let id = v
                .get("request_id")
                .and_then(crate::json::Value::as_f64)
                .expect("ok records carry the server's request id") as u64;
            assert!(ids.insert(id), "request ids are unique");
            assert!(
                v.get("latency_ms")
                    .and_then(crate::json::Value::as_f64)
                    .unwrap()
                    >= 0.0
            );
        }

        server.stop();
        service.shutdown();
    }

    /// Round-robin across two cities of one server, every response
    /// verified against each city's own reference engine.
    #[test]
    fn multi_city_round_robin_verifies_per_city() {
        use atsq_core::{Engine, Partition};
        use atsq_tenant::{CityId, CityRegistry, LoadedCity};
        use std::sync::Arc;

        let datasets: Vec<_> = (0..2u64)
            .map(|i| generate(&CityConfig::tiny(60 + i)).unwrap())
            .collect();
        let registry = Arc::new(CityRegistry::new(CityId::new("a").unwrap(), None));
        for (name, dataset) in ["a", "b"].iter().zip(&datasets) {
            let dataset = dataset.clone();
            registry
                .add_city(
                    CityId::new(*name).unwrap(),
                    Arc::new(move || {
                        let (engine, _) = Engine::build_gat(&dataset, 1, Partition::Hash, None)
                            .map_err(|e| e.to_string())?;
                        Ok(LoadedCity {
                            dataset: Arc::new(dataset.clone()),
                            engine: Arc::new(engine),
                            loaded_from_snapshot: false,
                        })
                    }),
                )
                .unwrap();
        }
        let service = Service::start_registry(
            registry,
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        );
        let server = Server::bind(service.handle(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr().to_string();

        let workloads: Vec<CityWorkload> = ["a", "b"]
            .iter()
            .zip(&datasets)
            .map(|(name, dataset)| CityWorkload {
                city: Some((*name).to_owned()),
                dataset: dataset.clone(),
            })
            .collect();
        let report = run_loadgen_cities(
            &addr,
            &workloads,
            &LoadgenConfig {
                concurrency: 4,
                requests: 80,
                pool: 10,
                k: 5,
                verify: true,
                ..LoadgenConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.sent, 80);
        assert_eq!(report.ok, 80, "{report}");
        assert_eq!(report.incorrect, 0, "{report}");
        assert_eq!(report.errors, 0, "{report}");
        // Round-robin split the traffic evenly across both cities.
        let infos = service.handle().cities();
        for info in &infos {
            assert_eq!(info.queries, 40, "{info:?}");
        }

        server.stop();
        service.shutdown();
    }
}
