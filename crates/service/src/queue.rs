//! A bounded multi-producer multi-consumer queue with batch pops.
//!
//! `Mutex<VecDeque>` + `Condvar` — deliberately simple. The queue is
//! the service's admission-control point: producers never block
//! (`try_push` fails fast when full) while consumers block until work
//! arrives or the queue is closed.

use atsq_model::sync::{Condvar, Mutex};
use std::collections::VecDeque;

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back.
    Full(T),
    /// The queue was closed; the item is handed back.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue. See the module docs.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        let queue = BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        };
        queue.inner.set_name("service.queue");
        queue
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.inner.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum depth.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Non-blocking push; fails fast when full or closed.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until at least one item is available, then drains up to
    /// `max` items in FIFO order. Returns `None` once the queue is
    /// closed **and** empty — the consumer's signal to exit.
    pub fn pop_batch(&self, max: usize) -> Option<Vec<T>> {
        let max = max.max(1);
        let mut inner = self.inner.lock();
        loop {
            if !inner.items.is_empty() {
                let n = inner.items.len().min(max);
                let batch: Vec<T> = inner.items.drain(..n).collect();
                if !inner.items.is_empty() {
                    // More work remains: wake another consumer.
                    self.available.notify_one();
                }
                return Some(batch);
            }
            if inner.closed {
                return None;
            }
            self.available.wait(&mut inner);
        }
    }

    /// Closes the queue: future pushes fail, consumers drain what is
    /// left and then see `None`.
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_and_batch_sizes() {
        let q = BoundedQueue::new(10);
        for i in 0..7 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.len(), 7);
        assert_eq!(q.pop_batch(3), Some(vec![0, 1, 2]));
        assert_eq!(q.pop_batch(100), Some(vec![3, 4, 5, 6]));
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_rejects() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.capacity(), 2);
        q.pop_batch(1);
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(PushError::Closed(2)));
        assert_eq!(q.pop_batch(8), Some(vec![1]));
        assert_eq!(q.pop_batch(8), None);
    }

    #[test]
    fn concurrent_producers_consumers_deliver_everything() {
        let q = Arc::new(BoundedQueue::new(64));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for i in 0..250u32 {
                        let v = p * 1000 + i;
                        loop {
                            match q.try_push(v) {
                                Ok(()) => break,
                                Err(PushError::Full(_)) => std::thread::yield_now(),
                                Err(PushError::Closed(_)) => panic!("closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(batch) = q.pop_batch(7) {
                        got.extend(batch);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut want: Vec<u32> = (0..4)
            .flat_map(|p| (0..250).map(move |i| p * 1000 + i))
            .collect();
        want.sort_unstable();
        assert_eq!(all, want);
    }
}
