//! `atsq-service` — the concurrent query-serving subsystem.
//!
//! The library crates answer one query at a time; this crate turns
//! them into a server. A [`Service`] owns an `Arc`-shared
//! [`Dataset`](atsq_types::Dataset) + [`Engine`](atsq_core::Engine) —
//! one [`GatEngine`](atsq_core::GatEngine), or a
//! [`ShardedEngine`](atsq_core::ShardedEngine) when
//! [`ServiceConfig::shards`] > 1 (immutable after build, so readers
//! need no locks) — and a fixed-size **worker pool** consuming a
//! **bounded request queue**:
//!
//! ```text
//!  clients ──submit──▶ BoundedQueue ──pop_batch──▶ workers ──▶ tickets
//!        ▲ admission       │                        │  ▲
//!        │ control         └── queue overflow ⇒     │  └─ LRU result
//!        │ (QueueFull)         rejected             │     cache
//!        └──────────────────── deadline expiry ◀────┘
//! ```
//!
//! * **Micro-batching** — workers drain up to `batch_size` requests
//!   at once (one queue/cache pass per batch), coalesce duplicates of
//!   the same canonical query into a single execution, and run
//!   same-shaped top-k groups through [`atsq_core::run_batch`] with
//!   `batch_threads`-way parallelism for bursty queues.
//! * **Result cache** — an LRU keyed by a canonicalised query
//!   ([`CacheKey`]): order-insensitive requests hash identically no
//!   matter how the stops are permuted.
//! * **Admission control** — a full queue rejects instead of queueing
//!   unboundedly; a request whose deadline passed while queued is
//!   answered [`Response::Expired`] without touching the engine.
//! * **Observability** — [`StatsSnapshot`] reports QPS, p50/p99
//!   latency, cache hit rate, queue depth and the underlying
//!   [`EngineCounters`](atsq_core::EngineCounters). With
//!   [`ServiceConfig::tracing`] on (the default), every request gets a
//!   service-assigned id (echoed on the wire), a per-stage
//!   [`StageClock`](atsq_obs::StageClock) whose durations telescope to
//!   the end-to-end latency, and an exact per-query engine-counter
//!   delta; slow requests land in a bounded slow-query log, and the
//!   whole surface is scrapable as Prometheus text via [`metrics`].
//!
//! The [`server`] module exposes a service over newline-delimited JSON
//! on TCP; [`loadgen`] is the matching closed-loop load generator with
//! Zipf-skewed query reuse. Both back the `atsq serve` / `atsq
//! loadgen` CLI commands.
//!
//! # Quickstart
//!
//! ```
//! use atsq_datagen::{generate, CityConfig};
//! use atsq_service::{Request, Response, Service, ServiceConfig};
//! use atsq_types::{ActivitySet, Point, Query, QueryPoint};
//!
//! let dataset = generate(&CityConfig::tiny(3)).unwrap();
//! let service = Service::build(dataset, ServiceConfig::default()).unwrap();
//! let handle = service.handle();
//!
//! let some_act = handle.dataset().trajectories()[0].points[0]
//!     .activities.iter().next().unwrap();
//! let query = Query::new(vec![QueryPoint::new(
//!     Point::new(10.0, 10.0),
//!     ActivitySet::from_ids([some_act]),
//! )]).unwrap();
//!
//! match handle.call(Request::Atsq { query, k: 3 }).unwrap() {
//!     Response::Ok { results, .. } => assert!(results.len() <= 3),
//!     other => panic!("unexpected {other:?}"),
//! }
//! service.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cache;
pub mod json;
pub mod loadgen;
pub mod metrics;
pub mod queue;
pub mod request;
pub mod server;
mod service;
pub mod stats;
pub mod wire;

pub use cache::{InsertOutcome, LruCache};
pub use loadgen::{run_loadgen, run_loadgen_cities, CityWorkload, LoadgenConfig, LoadgenReport};
pub use queue::{BoundedQueue, PushError};
pub use request::{CacheKey, Request, Response};
pub use server::Server;
pub use service::{Service, ServiceConfig, ServiceHandle, StartupInfo, SubmitError, Ticket};
pub use stats::{percentile_sorted, ServiceStats, StatsSnapshot};
