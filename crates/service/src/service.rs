//! The [`Service`]: shared index, worker pool, cache and admission.

use crate::cache::LruCache;
use crate::queue::{BoundedQueue, PushError};
use crate::request::{CacheKey, Request, Response};
use crate::stats::{ServiceStats, StatsSnapshot};
use atsq_core::{run_batch, CacheOutcome, Engine, IndexCache, Partition, QueryEngine, QueryKind};
use atsq_types::{Dataset, Query, QueryResult, Result as LibResult};
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Tuning knobs of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads consuming the request queue. Zero is allowed
    /// (useful in tests: requests queue up but nothing executes).
    pub workers: usize,
    /// Bound on queued requests; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Maximum requests a worker drains in one batch.
    pub batch_size: usize,
    /// Threads a worker may use to execute one batch's same-shaped
    /// top-k group through [`atsq_core::run_batch`]. Helps bursty
    /// queues (one worker holding a deep batch while others idle);
    /// values above 1 oversubscribe when every worker is busy.
    pub batch_threads: usize,
    /// LRU result-cache entries; zero disables caching.
    pub cache_capacity: usize,
    /// Deadline applied to requests submitted without one. `None`
    /// means such requests never expire.
    pub default_deadline: Option<Duration>,
    /// Index shards ([`Service::build`] only): `1` serves one
    /// [`GatEngine`]; above that a [`ShardedEngine`] searches all
    /// shards in parallel per query. Per-query shard threads multiply
    /// with `workers` and `batch_threads`: the engine spawns up to
    /// `min(shards, cores)` threads per query, so when serving a
    /// sharded engine under saturating load keep `batch_threads` at 1
    /// to avoid oversubscribing the cores.
    pub shards: usize,
    /// How trajectories map to shards when `shards > 1`.
    pub partition: Partition,
    /// Directory of persistent index snapshots ([`Service::build`]
    /// only). When set, startup loads a validated snapshot of the GAT
    /// (or sharded) index instead of rebuilding it — snapshots are
    /// keyed by the dataset's content hash, so a stale or corrupt file
    /// falls back to a fresh build whose snapshot is saved for the
    /// next start. `None` always builds in process.
    pub index_cache: Option<std::path::PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: thread::available_parallelism().map_or(4, |n| n.get()),
            queue_capacity: 1024,
            batch_size: 16,
            batch_threads: 2,
            cache_capacity: 4096,
            default_deadline: None,
            shards: 1,
            partition: Partition::Hash,
            index_cache: None,
        }
    }
}

/// Why a submission was refused at admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — shed load and retry later.
    QueueFull,
    /// The service is shutting down.
    Stopped,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "request queue is full"),
            SubmitError::Stopped => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

struct Job {
    request: Request,
    key: CacheKey,
    enqueued: Instant,
    deadline: Option<Instant>,
    reply: mpsc::Sender<Response>,
}

struct Shared {
    dataset: Arc<Dataset>,
    engine: Arc<Engine>,
    queue: BoundedQueue<Job>,
    cache: Mutex<LruCache<CacheKey, Arc<Vec<QueryResult>>>>,
    stats: ServiceStats,
    config: ServiceConfig,
}

/// A running query service: worker pool + queue + cache around one
/// immutable dataset/index pair. Created with [`Service::start`] or
/// [`Service::build`]; submit work through [`Service::handle`].
pub struct Service {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Service {
    /// Builds the engine for `dataset` — a single GAT index, or a
    /// [`ShardedEngine`] when `config.shards > 1` — and starts the
    /// service. With `config.index_cache` set, the index is loaded
    /// from a validated snapshot when one exists (see
    /// [`atsq_core::IndexCache`]); otherwise it is built fresh and
    /// snapshotted for the next start.
    pub fn build(dataset: Dataset, config: ServiceConfig) -> LibResult<Self> {
        Ok(Self::build_with_outcome(dataset, config)?.0)
    }

    /// [`Service::build`], also reporting how the engine came to be:
    /// `Some(CacheOutcome)` when an index cache was configured
    /// (loaded, or rebuilt and why), `None` otherwise. This is the
    /// embedder's observability hook for cold starts — a corrupt
    /// snapshot degrades to a rebuild silently at the serving level,
    /// and the outcome is the only record of it.
    pub fn build_with_outcome(
        dataset: Dataset,
        config: ServiceConfig,
    ) -> LibResult<(Self, Option<CacheOutcome>)> {
        let cache = config.index_cache.as_ref().map(IndexCache::new);
        let (engine, outcome) =
            Engine::build_gat(&dataset, config.shards, config.partition, cache.as_ref())?;
        Ok((
            Self::start(Arc::new(dataset), Arc::new(engine), config),
            outcome,
        ))
    }

    /// Starts the worker pool over an existing dataset and engine.
    pub fn start(dataset: Arc<Dataset>, engine: Arc<Engine>, config: ServiceConfig) -> Self {
        let shared = Arc::new(Shared {
            dataset,
            engine,
            queue: BoundedQueue::new(config.queue_capacity),
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            stats: ServiceStats::default(),
            config: config.clone(),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = shared.clone();
                thread::Builder::new()
                    .name(format!("atsq-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        Service { shared, workers }
    }

    /// A cheaply cloneable submission handle.
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            shared: self.shared.clone(),
        }
    }

    /// Snapshot of the service counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.handle().stats()
    }

    /// Stops accepting work, drains the queue, joins the workers.
    pub fn shutdown(mut self) {
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Clonable submission handle to a [`Service`].
#[derive(Clone)]
pub struct ServiceHandle {
    shared: Arc<Shared>,
}

/// A pending response, redeemable exactly once.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Response>,
}

impl Ticket {
    /// Blocks until the response arrives. `None` only if the service
    /// was torn down without draining (workers panicked).
    pub fn wait(self) -> Option<Response> {
        self.rx.recv().ok()
    }

    /// Waits up to `timeout` for the response, consuming the ticket
    /// either way.
    pub fn wait_timeout(self, timeout: Duration) -> Option<Response> {
        self.rx.recv_timeout(timeout).ok()
    }
}

impl ServiceHandle {
    /// Submits a request with the config's default deadline. Returns a
    /// [`Ticket`] immediately; admission control may refuse with
    /// [`SubmitError::QueueFull`].
    pub fn submit(&self, request: Request) -> Result<Ticket, SubmitError> {
        self.submit_with_deadline(request, self.shared.config.default_deadline)
    }

    /// Submits a request that expires `deadline` after submission
    /// (`None` = never).
    pub fn submit_with_deadline(
        &self,
        request: Request,
        deadline: Option<Duration>,
    ) -> Result<Ticket, SubmitError> {
        let now = Instant::now();
        let (tx, rx) = mpsc::channel();
        let job = Job {
            key: request.cache_key(),
            request,
            enqueued: now,
            deadline: deadline.map(|d| now + d),
            reply: tx,
        };
        match self.shared.queue.try_push(job) {
            Ok(()) => {
                self.shared.stats.record_submitted();
                Ok(Ticket { rx })
            }
            Err(PushError::Full(_)) => {
                self.shared.stats.record_rejected();
                Err(SubmitError::QueueFull)
            }
            Err(PushError::Closed(_)) => Err(SubmitError::Stopped),
        }
    }

    /// Submits and blocks for the response.
    pub fn call(&self, request: Request) -> Result<Response, SubmitError> {
        self.submit(request)?.wait().ok_or(SubmitError::Stopped)
    }

    /// Snapshot of the service counters, including per-shard candidate
    /// counts when the served engine is sharded. The engine counters
    /// are read once and the aggregate derived from the per-shard
    /// pass, so `sum(shard_candidates) == engine.candidates` holds
    /// even while workers are executing.
    pub fn stats(&self) -> StatsSnapshot {
        let per_shard = self.shared.engine.per_shard_counters();
        let shard_candidates = per_shard.iter().map(|c| c.candidates).collect();
        let engine = atsq_core::EngineCounters::sum(per_shard);
        self.shared
            .stats
            .snapshot(self.shared.queue.len(), engine, shard_candidates)
    }

    /// The served dataset.
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.shared.dataset
    }

    /// The served engine.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.shared.engine
    }
}

/// Requests per (kind, k) group that make a `run_batch` worthwhile.
/// Below this the per-call plumbing outweighs the shared setup.
const MIN_GROUP: usize = 2;

fn worker_loop(shared: &Shared) {
    while let Some(jobs) = shared.queue.pop_batch(shared.config.batch_size) {
        shared.stats.record_batch(jobs.len());
        process_batch(shared, jobs);
    }
}

fn process_batch(shared: &Shared, jobs: Vec<Job>) {
    // Admission at execution time: expire stale requests, serve cache
    // hits, and collect the remainder for the engine.
    let mut runnable: Vec<Job> = Vec::with_capacity(jobs.len());
    {
        let now = Instant::now();
        let mut cache = shared.cache.lock().expect("cache lock");
        for job in jobs {
            if job.deadline.is_some_and(|d| d < now) {
                shared.stats.record_expired();
                let _ = job.reply.send(Response::Expired);
                continue;
            }
            if let Some(hit) = cache.get(&job.key) {
                shared.stats.record_cache_hit();
                shared.stats.record_completed(job.enqueued.elapsed());
                let _ = job.reply.send(Response::Ok {
                    results: hit.clone(),
                    cached: true,
                });
                continue;
            }
            runnable.push(job);
        }
    }
    if runnable.is_empty() {
        return;
    }

    // Coalescing: within one batch, jobs sharing a cache key execute
    // once; the duplicates reuse the primary's result. Zipf-skewed
    // traffic makes same-key collisions in a batch common.
    let mut primaries: Vec<Job> = Vec::with_capacity(runnable.len());
    let mut duplicates: Vec<(Job, usize)> = Vec::new();
    let mut first_with_key: HashMap<CacheKey, usize> = HashMap::new();
    for job in runnable {
        match first_with_key.entry(job.key.clone()) {
            std::collections::hash_map::Entry::Occupied(e) => duplicates.push((job, *e.get())),
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(primaries.len());
                primaries.push(job);
            }
        }
    }

    // Micro-batching: same-shaped top-k requests share one
    // `run_batch` call; everything else runs individually.
    let mut groups: HashMap<(QueryKind, usize), Vec<usize>> = HashMap::new();
    for (i, job) in primaries.iter().enumerate() {
        match &job.request {
            Request::Atsq { k, .. } => groups.entry((QueryKind::Atsq, *k)).or_default().push(i),
            Request::Oatsq { k, .. } => groups.entry((QueryKind::Oatsq, *k)).or_default().push(i),
            Request::AtsqRange { .. } | Request::OatsqRange { .. } => {}
        }
    }

    let mut outcomes: Vec<Option<Result<Arc<Vec<QueryResult>>, String>>> =
        (0..primaries.len()).map(|_| None).collect();
    for ((kind, k), members) in groups {
        if members.len() < MIN_GROUP {
            continue;
        }
        let queries: Vec<Query> = members
            .iter()
            .map(|&i| primaries[i].request.query().clone())
            .collect();
        let threads = members.len().min(shared.config.batch_threads.max(1));
        match catch_execution(|| {
            run_batch(
                shared.engine.as_ref(),
                &shared.dataset,
                &queries,
                k,
                kind,
                threads,
            )
        }) {
            Ok(batched) => {
                for (&i, results) in members.iter().zip(batched) {
                    outcomes[i] = Some(Ok(Arc::new(results)));
                }
            }
            Err(panic_msg) => {
                for &i in &members {
                    outcomes[i] = Some(Err(panic_msg.clone()));
                }
            }
        }
    }

    let mut replies: Vec<Result<Arc<Vec<QueryResult>>, String>> =
        Vec::with_capacity(primaries.len());
    // Collect this batch's cache inserts and take the cache lock once
    // after the loop: one lock round-trip per batch instead of one per
    // executed request keeps the hot path off the mutex.
    let mut inserts: Vec<(CacheKey, Arc<Vec<QueryResult>>)> = Vec::new();
    for (i, job) in primaries.into_iter().enumerate() {
        let outcome = outcomes[i].take().unwrap_or_else(|| {
            catch_execution(|| execute_single(shared, &job.request)).map(Arc::new)
        });
        match &outcome {
            Ok(results) => {
                shared.stats.record_cache_miss();
                send_ok(shared, &job, results, false);
                // The job is consumed here, so the key moves into the
                // insert list without a clone.
                inserts.push((job.key, results.clone()));
            }
            Err(panic_msg) => {
                shared.stats.record_failed();
                let _ = job.reply.send(Response::Failed {
                    error: panic_msg.clone(),
                });
            }
        }
        replies.push(outcome);
    }
    if !inserts.is_empty() {
        let mut cache = shared.cache.lock().expect("cache lock");
        for (key, results) in inserts {
            cache.insert(key, results);
        }
    }

    for (job, primary) in duplicates {
        match &replies[primary] {
            Ok(results) => {
                shared.stats.record_coalesced();
                send_ok(shared, &job, results, false);
            }
            Err(panic_msg) => {
                shared.stats.record_failed();
                let _ = job.reply.send(Response::Failed {
                    error: panic_msg.clone(),
                });
            }
        }
    }
}

/// Sends a successful result, honouring the deadline contract end to
/// end: admission only catches deadlines that passed while *queued*, so
/// a deadline that expired during engine execution is re-checked here
/// and answered [`Response::Expired`] instead of a stale `Ok`. The
/// result is still cached by the caller — the work was done and future
/// requests benefit.
///
/// `cached` is false for freshly computed results, including ones
/// coalesced onto an in-batch primary (keeps client-side and
/// server-side hit rates in step).
fn send_ok(shared: &Shared, job: &Job, results: &Arc<Vec<QueryResult>>, cached: bool) {
    if job.deadline.is_some_and(|d| d < Instant::now()) {
        shared.stats.record_expired();
        let _ = job.reply.send(Response::Expired);
        return;
    }
    shared.stats.record_completed(job.enqueued.elapsed());
    let _ = job.reply.send(Response::Ok {
        results: results.clone(),
        cached,
    });
}

/// Runs engine work, converting a panic into an error string so one
/// poisonous request cannot kill a worker thread (and, with it,
/// silently shrink the pool).
fn catch_execution<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => Err(panic_message(&payload)),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "query execution panicked".to_owned()
    }
}

fn execute_single(shared: &Shared, request: &Request) -> Vec<QueryResult> {
    let (engine, ds) = (shared.engine.as_ref(), shared.dataset.as_ref());
    match request {
        Request::Atsq { query, k } => engine.atsq(ds, query, *k),
        Request::Oatsq { query, k } => engine.oatsq(ds, query, *k),
        Request::AtsqRange { query, tau } => engine.atsq_range(ds, query, *tau),
        Request::OatsqRange { query, tau } => engine.oatsq_range(ds, query, *tau),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsq_datagen::{generate, generate_queries, CityConfig, QueryGenConfig};

    fn tiny_service(config: ServiceConfig) -> (Service, Vec<Query>) {
        let dataset = generate(&CityConfig::tiny(11)).unwrap();
        let queries = generate_queries(&dataset, &QueryGenConfig::default(), 8);
        let service = Service::build(dataset, config).unwrap();
        (service, queries)
    }

    #[test]
    fn answers_match_direct_engine() {
        let (service, queries) = tiny_service(ServiceConfig {
            workers: 2,
            batch_size: 4,
            ..ServiceConfig::default()
        });
        let handle = service.handle();
        for q in &queries {
            let via_service = handle
                .call(Request::Atsq {
                    query: q.clone(),
                    k: 5,
                })
                .unwrap();
            let direct = handle.engine().atsq(handle.dataset(), q, 5);
            assert_eq!(via_service.results().unwrap(), direct.as_slice());
        }
        service.shutdown();
    }

    #[test]
    fn all_request_kinds_roundtrip() {
        let (service, queries) = tiny_service(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let handle = service.handle();
        let q = queries[0].clone();
        let reqs = [
            Request::Atsq {
                query: q.clone(),
                k: 3,
            },
            Request::Oatsq {
                query: q.clone(),
                k: 3,
            },
            Request::AtsqRange {
                query: q.clone(),
                tau: 50.0,
            },
            Request::OatsqRange {
                query: q,
                tau: 50.0,
            },
        ];
        for r in reqs {
            let resp = handle.call(r).unwrap();
            assert!(resp.results().is_some());
        }
        let snap = handle.stats();
        assert_eq!(snap.completed, 4);
        service.shutdown();
    }

    #[test]
    fn repeat_queries_hit_the_cache() {
        let (service, queries) = tiny_service(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let handle = service.handle();
        let req = Request::Atsq {
            query: queries[0].clone(),
            k: 5,
        };
        let first = handle.call(req.clone()).unwrap();
        assert!(!first.is_cached());
        let second = handle.call(req.clone()).unwrap();
        assert!(second.is_cached());
        assert_eq!(first.results(), second.results());
        // Permuted stops of an order-insensitive query also hit.
        let mut permuted = queries[0].clone();
        permuted.points.reverse();
        let third = handle
            .call(Request::Atsq {
                query: permuted,
                k: 5,
            })
            .unwrap();
        if queries[0].points.len() > 1 {
            assert!(third.is_cached());
        }
        let snap = handle.stats();
        assert!(snap.cache_hits >= 1, "{snap:?}");
        service.shutdown();
    }

    #[test]
    fn zero_workers_overflow_rejection() {
        let (service, queries) = tiny_service(ServiceConfig {
            workers: 0,
            queue_capacity: 2,
            ..ServiceConfig::default()
        });
        let handle = service.handle();
        let req = |i: usize| Request::Atsq {
            query: queries[i % queries.len()].clone(),
            k: 3,
        };
        let _t1 = handle.submit(req(0)).unwrap();
        let _t2 = handle.submit(req(1)).unwrap();
        assert_eq!(handle.submit(req(2)).unwrap_err(), SubmitError::QueueFull);
        let snap = handle.stats();
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.queue_depth, 2);
        service.shutdown();
    }

    #[test]
    fn preexpired_deadline_is_reported() {
        let (service, queries) = tiny_service(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let handle = service.handle();
        let resp = handle
            .submit_with_deadline(
                Request::Atsq {
                    query: queries[0].clone(),
                    k: 3,
                },
                Some(Duration::ZERO),
            )
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(resp, Response::Expired);
        assert_eq!(handle.stats().expired, 1);
        service.shutdown();
    }

    /// A deadline that is alive at batch admission but passes while the
    /// engine is executing must be answered `Expired`, not a stale
    /// `Ok`. A pile of OATSQ primaries in the same batch runs first
    /// (grouped through `run_batch`), guaranteeing the doomed request's
    /// short deadline has passed by the time its own execution and
    /// reply happen.
    #[test]
    fn deadline_expiring_during_execution_is_reported() {
        let (service, queries) = tiny_service(ServiceConfig {
            workers: 0,
            batch_size: 512,
            queue_capacity: 512,
            cache_capacity: 0, // no hits: every filler executes
            ..ServiceConfig::default()
        });
        let handle = service.handle();
        let fillers: Vec<Ticket> = (0..120)
            .map(|i| {
                let mut query = queries[i % queries.len()].clone();
                // Perturb so every filler is a distinct primary.
                query.points[0].loc.x += i as f64 * 1e-9;
                handle.submit(Request::Oatsq { query, k: 9 }).unwrap()
            })
            .collect();
        let doomed = handle
            .submit_with_deadline(
                Request::Atsq {
                    query: queries[0].clone(),
                    k: 3,
                },
                Some(Duration::from_millis(3)),
            )
            .unwrap();
        service.shared.queue.close();
        worker_loop(&service.shared);
        for t in fillers {
            assert!(t.wait().unwrap().results().is_some());
        }
        assert_eq!(doomed.wait().unwrap(), Response::Expired);
        let snap = handle.stats();
        assert_eq!(snap.expired, 1);
        // The doomed request *did* execute (captured as a cache miss):
        // this is the post-execution deadline check, not admission.
        assert_eq!(snap.cache_misses, 121);
        assert_eq!(snap.completed, 120);
    }

    /// A sharded service answers byte-identically to the single-index
    /// engine and reports per-shard candidate counts.
    #[test]
    fn sharded_service_matches_single_index() {
        let dataset = generate(&CityConfig::tiny(23)).unwrap();
        let queries = generate_queries(&dataset, &QueryGenConfig::default(), 6);
        let single = atsq_core::GatEngine::build(&dataset).unwrap();
        let service = Service::build(
            dataset.clone(),
            ServiceConfig {
                workers: 2,
                shards: 4,
                partition: Partition::Spatial,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let handle = service.handle();
        assert!(matches!(handle.engine().as_ref(), Engine::Sharded(_)));
        for q in &queries {
            let via_service = handle
                .call(Request::Atsq {
                    query: q.clone(),
                    k: 5,
                })
                .unwrap();
            let direct = single.atsq(&dataset, q, 5);
            assert_eq!(via_service.results().unwrap(), direct.as_slice());
        }
        let snap = handle.stats();
        assert_eq!(snap.shard_candidates.len(), 4);
        assert!(snap.shard_candidates.iter().sum::<u64>() > 0, "{snap:?}");
        assert_eq!(
            snap.shard_candidates.iter().sum::<u64>(),
            snap.engine.candidates
        );
        service.shutdown();
    }

    /// The cold-start path: a service started with an index cache
    /// snapshots its index; a second start loads the snapshot and
    /// serves byte-identical answers, single and sharded.
    #[test]
    fn index_cache_restart_serves_identical_answers() {
        let dataset = generate(&CityConfig::tiny(31)).unwrap();
        let queries = generate_queries(&dataset, &QueryGenConfig::default(), 5);
        let dir = std::env::temp_dir().join(format!("atsq-service-cache-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        for shards in [1usize, 2] {
            let config = || ServiceConfig {
                workers: 2,
                shards,
                index_cache: Some(dir.clone()),
                ..ServiceConfig::default()
            };
            let first = Service::build(dataset.clone(), config()).unwrap();
            let answers: Vec<_> = queries
                .iter()
                .map(|q| {
                    first
                        .handle()
                        .call(Request::Atsq {
                            query: q.clone(),
                            k: 5,
                        })
                        .unwrap()
                })
                .collect();
            first.shutdown();
            // "Restart": a fresh service over the same dataset + cache.
            let second = Service::build(dataset.clone(), config()).unwrap();
            for (q, want) in queries.iter().zip(&answers) {
                let got = second
                    .handle()
                    .call(Request::Atsq {
                        query: q.clone(),
                        k: 5,
                    })
                    .unwrap();
                assert_eq!(got.results(), want.results(), "shards={shards}");
            }
            second.shutdown();
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_requests_in_one_batch_coalesce() {
        // No workers: four identical submissions pile up in the queue,
        // then one manual worker pass drains them as a single batch.
        let (service, queries) = tiny_service(ServiceConfig {
            workers: 0,
            batch_size: 16,
            ..ServiceConfig::default()
        });
        let handle = service.handle();
        let req = Request::Atsq {
            query: queries[0].clone(),
            k: 5,
        };
        let tickets: Vec<Ticket> = (0..4)
            .map(|_| handle.submit(req.clone()).unwrap())
            .collect();
        service.shared.queue.close();
        worker_loop(&service.shared);
        let responses: Vec<Response> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        let first = responses[0].results().unwrap();
        for r in &responses {
            assert_eq!(r.results().unwrap(), first);
        }
        let snap = handle.stats();
        assert_eq!(snap.completed, 4);
        assert_eq!(
            snap.cache_misses, 1,
            "duplicates must not re-run the engine"
        );
        assert_eq!(snap.coalesced, 3);
    }

    #[test]
    fn poisonous_request_fails_without_killing_the_pool() {
        use atsq_types::{ActivitySet, Point, QueryPoint};
        let (service, queries) = tiny_service(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let handle = service.handle();
        // 21 activities at one stop exceeds the matching kernels'
        // QueryMask cap and panics inside the engine.
        let toxic = Query::new(vec![QueryPoint::new(
            Point::new(0.0, 0.0),
            ActivitySet::from_raw(0..21),
        )])
        .unwrap();
        let resp = handle.call(Request::Atsq { query: toxic, k: 3 }).unwrap();
        assert!(matches!(resp, Response::Failed { .. }), "{resp:?}");
        assert_eq!(handle.stats().failed, 1);
        // The single worker survived the panic and still serves.
        let ok = handle
            .call(Request::Atsq {
                query: queries[0].clone(),
                k: 3,
            })
            .unwrap();
        assert!(ok.results().is_some());
        service.shutdown();
    }

    #[test]
    fn submitting_after_shutdown_fails() {
        let (service, queries) = tiny_service(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let handle = service.handle();
        service.shutdown();
        assert_eq!(
            handle
                .submit(Request::Atsq {
                    query: queries[0].clone(),
                    k: 1
                })
                .unwrap_err(),
            SubmitError::Stopped
        );
    }

    #[test]
    fn concurrent_submitters_get_correct_answers() {
        let (service, queries) = tiny_service(ServiceConfig {
            workers: 4,
            batch_size: 8,
            ..ServiceConfig::default()
        });
        let handle = service.handle();
        let expected: Vec<_> = queries
            .iter()
            .map(|q| handle.engine().atsq(handle.dataset(), q, 5))
            .collect();
        thread::scope(|scope| {
            for t in 0..8 {
                let handle = handle.clone();
                let queries = &queries;
                let expected = &expected;
                scope.spawn(move || {
                    for rep in 0..20 {
                        let i = (t + rep) % queries.len();
                        let resp = handle
                            .call(Request::Atsq {
                                query: queries[i].clone(),
                                k: 5,
                            })
                            .unwrap();
                        assert_eq!(resp.results().unwrap(), expected[i].as_slice());
                    }
                });
            }
        });
        let snap = handle.stats();
        assert_eq!(snap.completed, 160);
        assert!(snap.cache_hits > 0);
        service.shutdown();
    }
}
