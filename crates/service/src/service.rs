//! The [`Service`]: city registry, worker pool, cache and admission.

use crate::cache::LruCache;
use crate::queue::{BoundedQueue, PushError};
use crate::request::{CacheKey, Request, Response};
use crate::stats::{ServiceStats, StatsSnapshot};
use atsq_core::{
    run_batch_with_sinks, CacheOutcome, Engine, IndexCache, Partition, QueryEngine, QueryKind,
};
use atsq_obs::{CounterScope, CounterSink, SlowEntry, SlowLog, Stage, StageClock, TraceReport};
use atsq_tenant::{CityId, CityInfo, CityLease, CityRegistry, TenantError};
use atsq_types::{Dataset, Query, QueryResult, Result as LibResult};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Tuning knobs of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads consuming the request queue. Zero is allowed
    /// (useful in tests: requests queue up but nothing executes).
    pub workers: usize,
    /// Bound on queued requests; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Maximum requests a worker drains in one batch.
    pub batch_size: usize,
    /// Threads a worker may use to execute one batch's same-shaped
    /// top-k group through [`atsq_core::run_batch`]. Helps bursty
    /// queues (one worker holding a deep batch while others idle);
    /// values above 1 oversubscribe when every worker is busy.
    pub batch_threads: usize,
    /// LRU result-cache entries; zero disables caching.
    pub cache_capacity: usize,
    /// Deadline applied to requests submitted without one. `None`
    /// means such requests never expire.
    pub default_deadline: Option<Duration>,
    /// Index shards ([`Service::build`] only): `1` serves one
    /// [`GatEngine`]; above that a [`ShardedEngine`] searches all
    /// shards in parallel per query. Per-query shard threads multiply
    /// with `workers` and `batch_threads`: the engine spawns up to
    /// `min(shards, cores)` threads per query, so when serving a
    /// sharded engine under saturating load keep `batch_threads` at 1
    /// to avoid oversubscribing the cores.
    pub shards: usize,
    /// How trajectories map to shards when `shards > 1`.
    pub partition: Partition,
    /// Directory of persistent index snapshots ([`Service::build`]
    /// only). When set, startup loads a validated snapshot of the GAT
    /// (or sharded) index instead of rebuilding it — snapshots are
    /// keyed by the dataset's content hash, so a stale or corrupt file
    /// falls back to a fresh build whose snapshot is saved for the
    /// next start. `None` always builds in process.
    pub index_cache: Option<std::path::PathBuf>,
    /// Per-request tracing: every request carries a [`StageClock`] and
    /// a per-query counter scope, producing a [`TraceReport`] (stage
    /// breakdown + engine work delta) alongside its response. Off, a
    /// request costs no clock reads or sink allocations and the slow
    /// log stays empty.
    pub tracing: bool,
    /// Slow-query log ring size; zero disables the log.
    pub slowlog_capacity: usize,
    /// End-to-end latency at or above which a traced request is
    /// recorded in the slow log. Requests at or above the live p99
    /// bucket are recorded regardless (always-sample-the-tail), and
    /// `Duration::ZERO` records every traced request.
    pub slowlog_threshold: Duration,
    /// Per-city admission cap: requests in flight for one city beyond
    /// which further submissions to that city are refused with
    /// [`SubmitError::CityOverloaded`]. Keeps one hot tenant from
    /// monopolising the shared queue. Zero = unlimited.
    pub city_inflight_cap: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: thread::available_parallelism().map_or(4, |n| n.get()),
            queue_capacity: 1024,
            batch_size: 16,
            batch_threads: 2,
            cache_capacity: 4096,
            default_deadline: None,
            shards: 1,
            partition: Partition::Hash,
            index_cache: None,
            tracing: true,
            slowlog_capacity: 128,
            slowlog_threshold: Duration::from_millis(50),
            city_inflight_cap: 0,
        }
    }
}

/// Why a submission was refused at admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — shed load and retry later.
    QueueFull,
    /// The city already has [`ServiceConfig::city_inflight_cap`]
    /// requests in flight — per-city load shedding.
    CityOverloaded(CityId),
    /// The request's city could not be resolved (unknown name, or its
    /// lazy load failed).
    City(TenantError),
    /// The service is shutting down.
    Stopped,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "request queue is full"),
            SubmitError::CityOverloaded(city) => {
                write!(f, "city `{city}` is at its in-flight request cap")
            }
            SubmitError::City(e) => write!(f, "{e}"),
            SubmitError::Stopped => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

impl From<TenantError> for SubmitError {
    fn from(e: TenantError) -> SubmitError {
        SubmitError::City(e)
    }
}

struct Job {
    /// Service-assigned request id, echoed on the wire and carried by
    /// the request's [`TraceReport`].
    id: u64,
    request: Request,
    key: CacheKey,
    /// Pins the request's city resident (and unevictable) from
    /// admission until the reply is sent, and carries the engine and
    /// dataset the workers execute against.
    lease: CityLease,
    enqueued: Instant,
    deadline: Option<Instant>,
    /// Stage timer; present iff tracing is on for this request.
    clock: Option<StageClock>,
    reply: mpsc::Sender<Reply>,
}

/// What travels back through a [`Ticket`]: the response plus, when
/// tracing is on, the request's trace.
struct Reply {
    response: Response,
    report: Option<TraceReport>,
}

/// How the served engine came to exist, surfaced on the metrics page.
#[derive(Debug, Clone, Copy, Default)]
pub struct StartupInfo {
    /// Wall-clock time of the engine build (or snapshot load) at
    /// service start. `None` when the service was started over an
    /// already-built engine ([`Service::start`]).
    pub engine_build: Option<Duration>,
    /// Whether a persistent index snapshot was loaded (`None`: no
    /// index cache was configured).
    pub loaded_from_snapshot: Option<bool>,
}

/// One city's LRU of canonicalised query → shared results.
type CachePartition = LruCache<CacheKey, Arc<Vec<QueryResult>>>;

/// Per-city result-cache partitions behind one lock (one lock
/// round-trip per batch pass, same as the old single cache). Shared
/// with the registry's evict hook, which drops a city's partition when
/// the city leaves residence — a reloaded engine answers identically,
/// but stale entries for an unloaded city would otherwise hold its
/// results (and their memory) alive.
struct CityCaches {
    partitions: Mutex<HashMap<CityId, CachePartition>>,
    /// Capacity of each city's partition; zero disables caching.
    capacity: usize,
}

impl CityCaches {
    fn new(capacity: usize) -> CityCaches {
        let partitions = Mutex::new(HashMap::new());
        partitions.set_name("service.result_cache");
        CityCaches {
            partitions,
            capacity,
        }
    }

    fn remove(&self, city: &CityId) {
        let mut partitions = self.partitions.lock();
        partitions.remove(city);
    }
}

struct Shared {
    registry: Arc<CityRegistry>,
    default_city: CityId,
    queue: BoundedQueue<Job>,
    caches: Arc<CityCaches>,
    stats: ServiceStats,
    config: ServiceConfig,
    next_request_id: AtomicU64,
    slowlog: SlowLog,
    startup: Mutex<StartupInfo>,
}

/// A running query service: worker pool + queue + cache around one
/// immutable dataset/index pair. Created with [`Service::start`] or
/// [`Service::build`]; submit work through [`Service::handle`].
pub struct Service {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Service {
    /// Builds the engine for `dataset` — a single GAT index, or a
    /// [`ShardedEngine`] when `config.shards > 1` — and starts the
    /// service. With `config.index_cache` set, the index is loaded
    /// from a validated snapshot when one exists (see
    /// [`atsq_core::IndexCache`]); otherwise it is built fresh and
    /// snapshotted for the next start.
    pub fn build(dataset: Dataset, config: ServiceConfig) -> LibResult<Self> {
        Ok(Self::build_with_outcome(dataset, config)?.0)
    }

    /// [`Service::build`], also reporting how the engine came to be:
    /// `Some(CacheOutcome)` when an index cache was configured
    /// (loaded, or rebuilt and why), `None` otherwise. This is the
    /// embedder's observability hook for cold starts — a corrupt
    /// snapshot degrades to a rebuild silently at the serving level,
    /// and the outcome is the only record of it.
    pub fn build_with_outcome(
        dataset: Dataset,
        config: ServiceConfig,
    ) -> LibResult<(Self, Option<CacheOutcome>)> {
        let cache = config.index_cache.as_ref().map(IndexCache::new);
        let t0 = Instant::now();
        let (engine, outcome) =
            Engine::build_gat(&dataset, config.shards, config.partition, cache.as_ref())?;
        let startup = StartupInfo {
            engine_build: Some(t0.elapsed()),
            loaded_from_snapshot: outcome.as_ref().map(CacheOutcome::loaded),
        };
        let service = Self::start(Arc::new(dataset), Arc::new(engine), config);
        *service.shared.startup.lock() = startup;
        Ok((service, outcome))
    }

    /// Starts the worker pool over an existing dataset and engine —
    /// single-city serving as the one-entry case of
    /// [`Service::start_registry`] (the city is [`CityId::DEFAULT`],
    /// pinned resident).
    pub fn start(dataset: Arc<Dataset>, engine: Arc<Engine>, config: ServiceConfig) -> Self {
        Self::start_registry(Arc::new(CityRegistry::single(dataset, engine)), config)
    }

    /// Starts the worker pool over a registry of cities. Requests name
    /// a city (or get the registry's default); the first request to a
    /// city triggers its single-flight lazy load, and the registry's
    /// memory budget governs which cities stay resident.
    pub fn start_registry(registry: Arc<CityRegistry>, config: ServiceConfig) -> Self {
        let caches = Arc::new(CityCaches::new(config.cache_capacity));
        let hook_caches = Arc::clone(&caches);
        registry.set_evict_hook(move |city| hook_caches.remove(city));
        let default_city = registry.default_city().clone();
        let shared = Arc::new(Shared {
            registry,
            default_city,
            queue: BoundedQueue::new(config.queue_capacity),
            caches,
            stats: ServiceStats::default(),
            next_request_id: AtomicU64::new(0),
            slowlog: SlowLog::new(
                config.slowlog_capacity,
                config.slowlog_threshold.as_nanos().min(u64::MAX as u128) as u64,
            ),
            startup: Mutex::new(StartupInfo::default()),
            config: config.clone(),
        });
        shared.startup.set_name("service.startup_info");
        let workers = (0..config.workers)
            .map(|i| {
                let shared = shared.clone();
                thread::Builder::new()
                    .name(format!("atsq-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        Service { shared, workers }
    }

    /// A cheaply cloneable submission handle.
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            shared: self.shared.clone(),
        }
    }

    /// Snapshot of the service counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.handle().stats()
    }

    /// Stops accepting work, drains the queue, joins the workers.
    pub fn shutdown(mut self) {
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Clonable submission handle to a [`Service`].
#[derive(Clone)]
pub struct ServiceHandle {
    shared: Arc<Shared>,
}

/// A pending response, redeemable exactly once.
#[derive(Debug)]
pub struct Ticket {
    id: u64,
    rx: mpsc::Receiver<Reply>,
}

impl Ticket {
    /// The service-assigned id of the submitted request. Ids are
    /// unique per service instance and start at 1.
    pub fn request_id(&self) -> u64 {
        self.id
    }

    /// Blocks until the response arrives. `None` only if the service
    /// was torn down without draining (workers panicked).
    pub fn wait(self) -> Option<Response> {
        self.rx.recv().ok().map(|r| r.response)
    }

    /// [`Ticket::wait`], also returning the request's [`TraceReport`]
    /// when tracing is on ([`ServiceConfig::tracing`]).
    pub fn wait_with_trace(self) -> Option<(Response, Option<TraceReport>)> {
        self.rx.recv().ok().map(|r| (r.response, r.report))
    }

    /// Waits up to `timeout` for the response, consuming the ticket
    /// either way.
    pub fn wait_timeout(self, timeout: Duration) -> Option<Response> {
        self.rx.recv_timeout(timeout).ok().map(|r| r.response)
    }
}

impl ServiceHandle {
    /// Submits a request with the config's default deadline. Returns a
    /// [`Ticket`] immediately; admission control may refuse with
    /// [`SubmitError::QueueFull`].
    pub fn submit(&self, request: Request) -> Result<Ticket, SubmitError> {
        self.submit_with_deadline(request, self.shared.config.default_deadline)
    }

    /// Submits a request to the default city that expires `deadline`
    /// after submission (`None` = never).
    pub fn submit_with_deadline(
        &self,
        request: Request,
        deadline: Option<Duration>,
    ) -> Result<Ticket, SubmitError> {
        let lease = self.shared.registry.resolve(&self.shared.default_city)?;
        self.submit_leased(lease, request, deadline)
    }

    /// Submits a request against an already resolved city lease (see
    /// [`ServiceHandle::resolve_city`]). The lease rides the queue with
    /// the job, keeping the city unevictable until the reply is sent.
    pub fn submit_leased(
        &self,
        lease: CityLease,
        request: Request,
        deadline: Option<Duration>,
    ) -> Result<Ticket, SubmitError> {
        // The clock starts before any submission work so the admission
        // stage covers key canonicalisation too; `fetch_add + 1` makes
        // ids start at 1 (0 reads as "no id" on the wire).
        let mut clock = self.shared.config.tracing.then(StageClock::start);
        // Per-city load shedding: the lease count includes this
        // request, so a cap of N admits at most N in flight per city.
        let cap = self.shared.config.city_inflight_cap;
        if cap > 0 && lease.inflight_now() > cap as u64 {
            self.shared.stats.record_rejected();
            return Err(SubmitError::CityOverloaded(lease.city().clone()));
        }
        // ordering: Relaxed — unique-id ticket; fetch_add's atomicity
        // alone guarantees distinct ids, no memory is published.
        let id = self.shared.next_request_id.fetch_add(1, Ordering::Relaxed) + 1;
        let now = Instant::now();
        let (tx, rx) = mpsc::channel();
        let mut job = Job {
            id,
            key: request.cache_key(),
            request,
            lease,
            enqueued: now,
            deadline: deadline.map(|d| now + d),
            clock: None,
            reply: tx,
        };
        if let Some(c) = &mut clock {
            c.mark(Stage::Admission);
        }
        job.clock = clock;
        match self.shared.queue.try_push(job) {
            Ok(()) => {
                self.shared.stats.record_submitted();
                Ok(Ticket { id, rx })
            }
            Err(PushError::Full(_)) => {
                self.shared.stats.record_rejected();
                Err(SubmitError::QueueFull)
            }
            Err(PushError::Closed(_)) => Err(SubmitError::Stopped),
        }
    }

    /// Submits and blocks for the response.
    pub fn call(&self, request: Request) -> Result<Response, SubmitError> {
        self.submit(request)?.wait().ok_or(SubmitError::Stopped)
    }

    /// Snapshot of the service counters, including per-shard candidate
    /// counts when the served engine is sharded. The engine counters
    /// are read once and the aggregate derived from the per-shard
    /// pass, so `sum(shard_candidates) == engine.candidates` holds
    /// even while workers are executing.
    ///
    /// Engine counters are scoped to the **default city** (all there is
    /// under single-city serving); per-city counters for every tenant
    /// are on [`ServiceHandle::cities`]. A non-resident default city
    /// reports zeros rather than forcing a load.
    pub fn stats(&self) -> StatsSnapshot {
        let (per_shard, router) = match self.shared.registry.peek_engine(&self.shared.default_city)
        {
            Some(engine) => (engine.per_shard_counters(), engine.router_counters()),
            None => (Vec::new(), None),
        };
        let shard_candidates = per_shard.iter().map(|c| c.candidates).collect();
        // The router contributes no candidates (each is charged to its
        // owner shard), so the per-shard sum invariant above survives
        // folding its cold-read counters into the aggregate.
        let engine = atsq_core::EngineCounters::sum(per_shard.into_iter().chain(router));
        self.shared
            .stats
            .snapshot(self.shared.queue.len(), engine, shard_candidates)
    }

    /// The default city's dataset, loading it if necessary.
    ///
    /// # Panics
    /// If the default city's lazy load fails (cannot happen under
    /// single-city serving, where the city is always resident).
    pub fn dataset(&self) -> Arc<Dataset> {
        let lease = self
            .shared
            .registry
            .resolve_uncounted(&self.shared.default_city)
            .expect("invariant: the default city must be loadable");
        Arc::clone(lease.dataset())
    }

    /// The default city's engine, loading it if necessary.
    ///
    /// # Panics
    /// If the default city's lazy load fails (cannot happen under
    /// single-city serving, where the city is always resident).
    pub fn engine(&self) -> Arc<Engine> {
        let lease = self
            .shared
            .registry
            .resolve_uncounted(&self.shared.default_city)
            .expect("invariant: the default city must be loadable");
        Arc::clone(lease.engine())
    }

    /// The registry of hosted cities behind this service.
    pub fn registry(&self) -> &Arc<CityRegistry> {
        &self.shared.registry
    }

    /// Resolves the city a request names (`None` = the default city),
    /// triggering its single-flight lazy load if it is not resident.
    /// The lease pins the city until dropped; pass it to
    /// [`ServiceHandle::submit_leased`].
    pub fn resolve_city(&self, name: Option<&str>) -> Result<CityLease, TenantError> {
        match name {
            None => self.shared.registry.resolve(&self.shared.default_city),
            Some(name) => self.shared.registry.resolve(&CityId::new(name)?),
        }
    }

    /// Snapshot of every hosted city (admin `cities` op).
    pub fn cities(&self) -> Vec<CityInfo> {
        self.shared.registry.cities()
    }

    /// Warms a city up (admin `city_load` op). Returns whether this
    /// call performed the load.
    pub fn city_load(&self, name: &str) -> Result<bool, TenantError> {
        self.shared.registry.load(&CityId::new(name)?)
    }

    /// Drops a city's engine and dataset (admin `city_unload` op);
    /// refuses while requests are in flight.
    pub fn city_unload(&self, name: &str) -> Result<(), TenantError> {
        self.shared.registry.unload(&CityId::new(name)?)
    }

    /// The full metrics surface rendered in Prometheus text format —
    /// request/cache/queue counters, the latency histogram, per-stage
    /// and per-shard aggregates, startup provenance, and the
    /// `atsq_city_*` per-tenant families. This backs the wire `metrics`
    /// op and the `atsq metrics` CLI.
    pub fn metrics_text(&self) -> String {
        let (shard_busy_ns, router_busy_ns) =
            match self.shared.registry.peek_engine(&self.shared.default_city) {
                Some(engine) => (engine.per_shard_busy_ns(), engine.router_busy_ns()),
                None => (Vec::new(), None),
            };
        crate::metrics::render(
            &self.stats(),
            &shard_busy_ns,
            router_busy_ns,
            self.shared.slowlog.len(),
            *self.shared.startup.lock(),
            &self.shared.registry.cities(),
        )
    }

    /// Current slow-query log entries, oldest first. Empty unless
    /// tracing is on and [`ServiceConfig::slowlog_capacity`] is
    /// non-zero.
    pub fn slowlog(&self) -> Vec<SlowEntry> {
        self.shared.slowlog.entries()
    }

    /// Records response-serialisation time measured by a front-end
    /// (the TCP server times its encode and reports it here; encode
    /// happens after the reply, outside the per-request latency).
    pub fn record_serialize(&self, elapsed: Duration) {
        self.shared
            .stats
            .record_serialize(elapsed.as_nanos().min(u64::MAX as u128) as u64);
    }
}

/// Requests per (kind, k) group that make a `run_batch` worthwhile.
/// Below this the per-call plumbing outweighs the shared setup.
const MIN_GROUP: usize = 2;

fn worker_loop(shared: &Shared) {
    while let Some(jobs) = shared.queue.pop_batch(shared.config.batch_size) {
        shared.stats.record_batch(jobs.len());
        process_batch(shared, jobs);
    }
}

fn process_batch(shared: &Shared, jobs: Vec<Job>) {
    // Admission at execution time: expire stale requests, serve cache
    // hits, and collect the remainder for the engine.
    let mut runnable: Vec<Job> = Vec::with_capacity(jobs.len());
    {
        let now = Instant::now();
        let mut caches = shared.caches.partitions.lock();
        for mut job in jobs {
            if let Some(c) = &mut job.clock {
                c.mark(Stage::Queue);
            }
            if job.deadline.is_some_and(|d| d < now) {
                shared.stats.record_expired();
                finish(shared, job, Response::Expired, "expired", None);
                continue;
            }
            // Result caching is partitioned per city: the same query
            // text means different things (and different answers) in
            // different cities.
            let hit = caches
                .entry(job.lease.city().clone())
                .or_insert_with(|| LruCache::new(shared.caches.capacity))
                .get(&job.key)
                .cloned();
            if let Some(c) = &mut job.clock {
                c.mark(Stage::Cache);
            }
            if let Some(hit) = hit {
                shared.stats.record_cache_hit();
                shared.stats.record_completed(job.enqueued.elapsed());
                let ok = Response::Ok {
                    results: hit,
                    cached: true,
                };
                finish(shared, job, ok, "ok", None);
                continue;
            }
            runnable.push(job);
        }
    }
    if runnable.is_empty() {
        return;
    }

    // Coalescing: within one batch, jobs sharing a city and cache key
    // execute once; the duplicates reuse the primary's result.
    // Zipf-skewed traffic makes same-key collisions in a batch common.
    let mut primaries: Vec<Job> = Vec::with_capacity(runnable.len());
    let mut duplicates: Vec<(Job, usize)> = Vec::new();
    let mut first_with_key: HashMap<(CityId, CacheKey), usize> = HashMap::new();
    for job in runnable {
        match first_with_key.entry((job.lease.city().clone(), job.key.clone())) {
            std::collections::hash_map::Entry::Occupied(e) => duplicates.push((job, *e.get())),
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(primaries.len());
                primaries.push(job);
            }
        }
    }

    // Micro-batching: same-city, same-shaped top-k requests share one
    // `run_batch` call (one engine, one dataset per group); everything
    // else runs individually.
    let mut groups: HashMap<(CityId, QueryKind, usize), Vec<usize>> = HashMap::new();
    for (i, job) in primaries.iter().enumerate() {
        let city = job.lease.city().clone();
        match &job.request {
            Request::Atsq { k, .. } => groups
                .entry((city, QueryKind::Atsq, *k))
                .or_default()
                .push(i),
            Request::Oatsq { k, .. } => groups
                .entry((city, QueryKind::Oatsq, *k))
                .or_default()
                .push(i),
            Request::AtsqRange { .. } | Request::OatsqRange { .. } => {}
        }
    }

    // One counter sink per primary: grouped members run concurrently
    // through `run_batch_with_sinks`, and the scoped contexts keep each
    // request's engine-counter delta exact despite the sharing.
    let sinks: Option<Vec<Arc<CounterSink>>> = shared
        .config
        .tracing
        .then(|| primaries.iter().map(|_| CounterSink::new()).collect());

    let mut outcomes: Vec<Option<Result<Arc<Vec<QueryResult>>, String>>> =
        (0..primaries.len()).map(|_| None).collect();
    for ((_city, kind, k), members) in groups {
        if members.len() < MIN_GROUP {
            continue;
        }
        // All members hold leases on the same city; run the group
        // against the first member's pinned engine and dataset.
        let (group_engine, group_dataset) = {
            let lease = &primaries[members[0]].lease;
            (Arc::clone(lease.engine()), Arc::clone(lease.dataset()))
        };
        let queries: Vec<Query> = members
            .iter()
            .map(|&i| primaries[i].request.query().clone())
            .collect();
        // A later group's assembly stage absorbs earlier groups'
        // execution time — the batch runs groups serially, and the
        // telescoping invariant (stages sum to end-to-end) wins over
        // attributing that wait more finely.
        for &i in &members {
            if let Some(c) = &mut primaries[i].clock {
                c.mark(Stage::Assembly);
            }
        }
        let member_sinks: Option<Vec<Arc<CounterSink>>> = sinks
            .as_ref()
            .map(|s| members.iter().map(|&i| s[i].clone()).collect());
        let threads = members.len().min(shared.config.batch_threads.max(1));
        match catch_execution(|| {
            run_batch_with_sinks(
                group_engine.as_ref(),
                &group_dataset,
                &queries,
                k,
                kind,
                threads,
                member_sinks.as_deref(),
            )
        }) {
            Ok(batched) => {
                for (&i, results) in members.iter().zip(batched) {
                    outcomes[i] = Some(Ok(Arc::new(results)));
                }
            }
            Err(panic_msg) => {
                for &i in &members {
                    outcomes[i] = Some(Err(panic_msg.clone()));
                }
            }
        }
        for &i in &members {
            if let Some(c) = &mut primaries[i].clock {
                c.mark(Stage::Engine);
            }
        }
    }

    let mut replies: Vec<Result<Arc<Vec<QueryResult>>, String>> =
        Vec::with_capacity(primaries.len());
    // Collect this batch's cache inserts and take the cache lock once
    // after the loop: one lock round-trip per batch instead of one per
    // executed request keeps the hot path off the mutex.
    let mut inserts: Vec<(CityId, CacheKey, Arc<Vec<QueryResult>>)> = Vec::new();
    for (i, mut job) in primaries.into_iter().enumerate() {
        let outcome = match outcomes[i].take() {
            Some(outcome) => outcome,
            None => {
                // Singleton request: runs alone, inside its own sink
                // scope so its counter delta stays per-query.
                if let Some(c) = &mut job.clock {
                    c.mark(Stage::Assembly);
                }
                let sink = sinks.as_ref().map(|s| s[i].clone());
                let outcome = catch_execution(|| {
                    let _ctx = sink.map(CounterScope::enter);
                    execute_single(&job)
                })
                .map(Arc::new);
                if let Some(c) = &mut job.clock {
                    c.mark(Stage::Engine);
                }
                outcome
            }
        };
        let sink = sinks.as_ref().map(|s| &s[i]);
        match &outcome {
            Ok(results) => {
                shared.stats.record_cache_miss();
                inserts.push((job.lease.city().clone(), job.key.clone(), results.clone()));
                send_ok(shared, job, results, false, sink);
            }
            Err(panic_msg) => {
                shared.stats.record_failed();
                let failed = Response::Failed {
                    error: panic_msg.clone(),
                };
                finish(shared, job, failed, "failed", sink);
            }
        }
        replies.push(outcome);
    }
    if !inserts.is_empty() {
        let mut caches = shared.caches.partitions.lock();
        for (city, key, results) in inserts {
            caches
                .entry(city)
                .or_insert_with(|| LruCache::new(shared.caches.capacity))
                .insert(key, results);
        }
    }

    for (job, primary) in duplicates {
        // A duplicate's trace shows zero engine counters — the primary
        // carries the shared execution's work — and its wait for the
        // primary lands in the reply stage.
        match &replies[primary] {
            Ok(results) => {
                shared.stats.record_coalesced();
                send_ok(shared, job, results, false, None);
            }
            Err(panic_msg) => {
                shared.stats.record_failed();
                let failed = Response::Failed {
                    error: panic_msg.clone(),
                };
                finish(shared, job, failed, "failed", None);
            }
        }
    }
}

/// Sends a successful result, honouring the deadline contract end to
/// end: admission only catches deadlines that passed while *queued*, so
/// a deadline that expired during engine execution is re-checked here
/// and answered [`Response::Expired`] instead of a stale `Ok`. The
/// result is still cached by the caller — the work was done and future
/// requests benefit.
///
/// `cached` is false for freshly computed results, including ones
/// coalesced onto an in-batch primary (keeps client-side and
/// server-side hit rates in step).
fn send_ok(
    shared: &Shared,
    job: Job,
    results: &Arc<Vec<QueryResult>>,
    cached: bool,
    sink: Option<&Arc<CounterSink>>,
) {
    if job.deadline.is_some_and(|d| d < Instant::now()) {
        shared.stats.record_expired();
        finish(shared, job, Response::Expired, "expired", sink);
        return;
    }
    shared.stats.record_completed(job.enqueued.elapsed());
    let ok = Response::Ok {
        results: results.clone(),
        cached,
    };
    finish(shared, job, ok, "ok", sink);
}

/// Terminal step of every job: stamps the reply stage, folds the trace
/// into the service-wide stage aggregates, offers it to the slow-query
/// log (forced for requests at or above the live p99 bucket), and sends
/// the response through the job's ticket.
fn finish(
    shared: &Shared,
    job: Job,
    response: Response,
    status: &'static str,
    sink: Option<&Arc<CounterSink>>,
) {
    let report = job.clock.map(|mut clock| {
        clock.mark(Stage::Reply);
        shared.stats.record_stages(&clock.stage_ns());
        let (counters, shard_busy_ns) = match sink {
            Some(s) => (s.counters(), s.shard_busy_ns()),
            None => Default::default(),
        };
        let cached = response.is_cached();
        let report = clock.finish(
            job.id,
            job.request.op(),
            status,
            cached,
            counters,
            shard_busy_ns,
        );
        let p99_floor = shared.stats.p99_floor_us().saturating_mul(1_000);
        let force = p99_floor > 0 && report.total_ns >= p99_floor;
        shared.slowlog.offer(report.clone(), force);
        report
    });
    let _ = job.reply.send(Reply { response, report });
}

/// Runs engine work, converting a panic into an error string so one
/// poisonous request cannot kill a worker thread (and, with it,
/// silently shrink the pool).
fn catch_execution<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => Err(panic_message(&payload)),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "query execution panicked".to_owned()
    }
}

fn execute_single(job: &Job) -> Vec<QueryResult> {
    let (engine, ds) = (job.lease.engine().as_ref(), job.lease.dataset().as_ref());
    match &job.request {
        Request::Atsq { query, k } => engine.atsq(ds, query, *k),
        Request::Oatsq { query, k } => engine.oatsq(ds, query, *k),
        Request::AtsqRange { query, tau } => engine.atsq_range(ds, query, *tau),
        Request::OatsqRange { query, tau } => engine.oatsq_range(ds, query, *tau),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsq_datagen::{generate, generate_queries, CityConfig, QueryGenConfig};

    fn tiny_service(config: ServiceConfig) -> (Service, Vec<Query>) {
        let dataset = generate(&CityConfig::tiny(11)).unwrap();
        let queries = generate_queries(&dataset, &QueryGenConfig::default(), 8);
        let service = Service::build(dataset, config).unwrap();
        (service, queries)
    }

    #[test]
    fn answers_match_direct_engine() {
        let (service, queries) = tiny_service(ServiceConfig {
            workers: 2,
            batch_size: 4,
            ..ServiceConfig::default()
        });
        let handle = service.handle();
        for q in &queries {
            let via_service = handle
                .call(Request::Atsq {
                    query: q.clone(),
                    k: 5,
                })
                .unwrap();
            let direct = handle.engine().atsq(&handle.dataset(), q, 5);
            assert_eq!(via_service.results().unwrap(), direct.as_slice());
        }
        service.shutdown();
    }

    #[test]
    fn all_request_kinds_roundtrip() {
        let (service, queries) = tiny_service(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let handle = service.handle();
        let q = queries[0].clone();
        let reqs = [
            Request::Atsq {
                query: q.clone(),
                k: 3,
            },
            Request::Oatsq {
                query: q.clone(),
                k: 3,
            },
            Request::AtsqRange {
                query: q.clone(),
                tau: 50.0,
            },
            Request::OatsqRange {
                query: q,
                tau: 50.0,
            },
        ];
        for r in reqs {
            let resp = handle.call(r).unwrap();
            assert!(resp.results().is_some());
        }
        let snap = handle.stats();
        assert_eq!(snap.completed, 4);
        service.shutdown();
    }

    #[test]
    fn repeat_queries_hit_the_cache() {
        let (service, queries) = tiny_service(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let handle = service.handle();
        let req = Request::Atsq {
            query: queries[0].clone(),
            k: 5,
        };
        let first = handle.call(req.clone()).unwrap();
        assert!(!first.is_cached());
        let second = handle.call(req.clone()).unwrap();
        assert!(second.is_cached());
        assert_eq!(first.results(), second.results());
        // Permuted stops of an order-insensitive query also hit.
        let mut permuted = queries[0].clone();
        permuted.points.reverse();
        let third = handle
            .call(Request::Atsq {
                query: permuted,
                k: 5,
            })
            .unwrap();
        if queries[0].points.len() > 1 {
            assert!(third.is_cached());
        }
        let snap = handle.stats();
        assert!(snap.cache_hits >= 1, "{snap:?}");
        service.shutdown();
    }

    #[test]
    fn zero_workers_overflow_rejection() {
        let (service, queries) = tiny_service(ServiceConfig {
            workers: 0,
            queue_capacity: 2,
            ..ServiceConfig::default()
        });
        let handle = service.handle();
        let req = |i: usize| Request::Atsq {
            query: queries[i % queries.len()].clone(),
            k: 3,
        };
        let _t1 = handle.submit(req(0)).unwrap();
        let _t2 = handle.submit(req(1)).unwrap();
        assert_eq!(handle.submit(req(2)).unwrap_err(), SubmitError::QueueFull);
        let snap = handle.stats();
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.queue_depth, 2);
        service.shutdown();
    }

    #[test]
    fn preexpired_deadline_is_reported() {
        let (service, queries) = tiny_service(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let handle = service.handle();
        let resp = handle
            .submit_with_deadline(
                Request::Atsq {
                    query: queries[0].clone(),
                    k: 3,
                },
                Some(Duration::ZERO),
            )
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(resp, Response::Expired);
        assert_eq!(handle.stats().expired, 1);
        service.shutdown();
    }

    /// A deadline that is alive at batch admission but passes while the
    /// engine is executing must be answered `Expired`, not a stale
    /// `Ok`. A pile of OATSQ primaries in the same batch runs first
    /// (grouped through `run_batch`), guaranteeing the doomed request's
    /// short deadline has passed by the time its own execution and
    /// reply happen.
    #[test]
    fn deadline_expiring_during_execution_is_reported() {
        let (service, queries) = tiny_service(ServiceConfig {
            workers: 0,
            batch_size: 512,
            queue_capacity: 512,
            cache_capacity: 0, // no hits: every filler executes
            ..ServiceConfig::default()
        });
        let handle = service.handle();
        let fillers: Vec<Ticket> = (0..120)
            .map(|i| {
                let mut query = queries[i % queries.len()].clone();
                // Perturb so every filler is a distinct primary.
                query.points[0].loc.x += i as f64 * 1e-9;
                handle.submit(Request::Oatsq { query, k: 9 }).unwrap()
            })
            .collect();
        let doomed = handle
            .submit_with_deadline(
                Request::Atsq {
                    query: queries[0].clone(),
                    k: 3,
                },
                Some(Duration::from_millis(3)),
            )
            .unwrap();
        service.shared.queue.close();
        worker_loop(&service.shared);
        for t in fillers {
            assert!(t.wait().unwrap().results().is_some());
        }
        assert_eq!(doomed.wait().unwrap(), Response::Expired);
        let snap = handle.stats();
        assert_eq!(snap.expired, 1);
        // The doomed request *did* execute (captured as a cache miss):
        // this is the post-execution deadline check, not admission.
        assert_eq!(snap.cache_misses, 121);
        assert_eq!(snap.completed, 120);
    }

    /// A sharded service answers byte-identically to the single-index
    /// engine and reports per-shard candidate counts.
    #[test]
    fn sharded_service_matches_single_index() {
        let dataset = generate(&CityConfig::tiny(23)).unwrap();
        let queries = generate_queries(&dataset, &QueryGenConfig::default(), 6);
        let single = atsq_core::GatEngine::build(&dataset).unwrap();
        let service = Service::build(
            dataset.clone(),
            ServiceConfig {
                workers: 2,
                shards: 4,
                partition: Partition::Spatial,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let handle = service.handle();
        assert!(matches!(handle.engine().as_ref(), Engine::Sharded(_)));
        for q in &queries {
            let via_service = handle
                .call(Request::Atsq {
                    query: q.clone(),
                    k: 5,
                })
                .unwrap();
            let direct = single.atsq(&dataset, q, 5);
            assert_eq!(via_service.results().unwrap(), direct.as_slice());
        }
        let snap = handle.stats();
        assert_eq!(snap.shard_candidates.len(), 4);
        assert!(snap.shard_candidates.iter().sum::<u64>() > 0, "{snap:?}");
        assert_eq!(
            snap.shard_candidates.iter().sum::<u64>(),
            snap.engine.candidates
        );
        service.shutdown();
    }

    /// The cold-start path: a service started with an index cache
    /// snapshots its index; a second start loads the snapshot and
    /// serves byte-identical answers, single and sharded.
    #[test]
    fn index_cache_restart_serves_identical_answers() {
        let dataset = generate(&CityConfig::tiny(31)).unwrap();
        let queries = generate_queries(&dataset, &QueryGenConfig::default(), 5);
        let dir = std::env::temp_dir().join(format!("atsq-service-cache-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        for shards in [1usize, 2] {
            let config = || ServiceConfig {
                workers: 2,
                shards,
                index_cache: Some(dir.clone()),
                ..ServiceConfig::default()
            };
            let first = Service::build(dataset.clone(), config()).unwrap();
            let answers: Vec<_> = queries
                .iter()
                .map(|q| {
                    first
                        .handle()
                        .call(Request::Atsq {
                            query: q.clone(),
                            k: 5,
                        })
                        .unwrap()
                })
                .collect();
            first.shutdown();
            // "Restart": a fresh service over the same dataset + cache.
            let second = Service::build(dataset.clone(), config()).unwrap();
            for (q, want) in queries.iter().zip(&answers) {
                let got = second
                    .handle()
                    .call(Request::Atsq {
                        query: q.clone(),
                        k: 5,
                    })
                    .unwrap();
                assert_eq!(got.results(), want.results(), "shards={shards}");
            }
            second.shutdown();
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_requests_in_one_batch_coalesce() {
        // No workers: four identical submissions pile up in the queue,
        // then one manual worker pass drains them as a single batch.
        let (service, queries) = tiny_service(ServiceConfig {
            workers: 0,
            batch_size: 16,
            ..ServiceConfig::default()
        });
        let handle = service.handle();
        let req = Request::Atsq {
            query: queries[0].clone(),
            k: 5,
        };
        let tickets: Vec<Ticket> = (0..4)
            .map(|_| handle.submit(req.clone()).unwrap())
            .collect();
        service.shared.queue.close();
        worker_loop(&service.shared);
        let responses: Vec<Response> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        let first = responses[0].results().unwrap();
        for r in &responses {
            assert_eq!(r.results().unwrap(), first);
        }
        let snap = handle.stats();
        assert_eq!(snap.completed, 4);
        assert_eq!(
            snap.cache_misses, 1,
            "duplicates must not re-run the engine"
        );
        assert_eq!(snap.coalesced, 3);
    }

    #[test]
    fn poisonous_request_fails_without_killing_the_pool() {
        use atsq_types::{ActivitySet, Point, QueryPoint};
        let (service, queries) = tiny_service(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let handle = service.handle();
        // 21 activities at one stop exceeds the matching kernels'
        // QueryMask cap and panics inside the engine.
        let toxic = Query::new(vec![QueryPoint::new(
            Point::new(0.0, 0.0),
            ActivitySet::from_raw(0..21),
        )])
        .unwrap();
        let resp = handle.call(Request::Atsq { query: toxic, k: 3 }).unwrap();
        assert!(matches!(resp, Response::Failed { .. }), "{resp:?}");
        assert_eq!(handle.stats().failed, 1);
        // The single worker survived the panic and still serves.
        let ok = handle
            .call(Request::Atsq {
                query: queries[0].clone(),
                k: 3,
            })
            .unwrap();
        assert!(ok.results().is_some());
        service.shutdown();
    }

    #[test]
    fn submitting_after_shutdown_fails() {
        let (service, queries) = tiny_service(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let handle = service.handle();
        service.shutdown();
        assert_eq!(
            handle
                .submit(Request::Atsq {
                    query: queries[0].clone(),
                    k: 1
                })
                .unwrap_err(),
            SubmitError::Stopped
        );
    }

    #[test]
    fn concurrent_submitters_get_correct_answers() {
        let (service, queries) = tiny_service(ServiceConfig {
            workers: 4,
            batch_size: 8,
            ..ServiceConfig::default()
        });
        let handle = service.handle();
        let expected: Vec<_> = queries
            .iter()
            .map(|q| handle.engine().atsq(&handle.dataset(), q, 5))
            .collect();
        thread::scope(|scope| {
            for t in 0..8 {
                let handle = handle.clone();
                let queries = &queries;
                let expected = &expected;
                scope.spawn(move || {
                    for rep in 0..20 {
                        let i = (t + rep) % queries.len();
                        let resp = handle
                            .call(Request::Atsq {
                                query: queries[i].clone(),
                                k: 5,
                            })
                            .unwrap();
                        assert_eq!(resp.results().unwrap(), expected[i].as_slice());
                    }
                });
            }
        });
        let snap = handle.stats();
        assert_eq!(snap.completed, 160);
        assert!(snap.cache_hits > 0);
        service.shutdown();
    }

    /// The attribution acceptance test: with a single-threaded batch
    /// drain, every request's trace carries a stage breakdown that
    /// sums *exactly* to its end-to-end latency, and the per-query
    /// engine-counter deltas sum *exactly* to the engine's lifetime
    /// totals — no work unattributed, none double-counted.
    #[test]
    fn traced_requests_attribute_engine_work_exactly() {
        use atsq_core::{EngineCounters, Profiled};
        let (service, queries) = tiny_service(ServiceConfig {
            workers: 0,
            batch_size: 64,
            batch_threads: 1,
            cache_capacity: 0,
            slowlog_capacity: 64,
            slowlog_threshold: Duration::ZERO,
            ..ServiceConfig::default()
        });
        let handle = service.handle();
        handle.engine().reset_counters();
        let tickets: Vec<Ticket> = queries
            .iter()
            .map(|q| {
                handle
                    .submit(Request::Atsq {
                        query: q.clone(),
                        k: 5,
                    })
                    .unwrap()
            })
            .collect();
        service.shared.queue.close();
        worker_loop(&service.shared);

        let mut ids = std::collections::HashSet::new();
        let mut summed = atsq_obs::QueryCounters::default();
        for t in tickets {
            let id = t.request_id();
            assert!(id > 0, "request ids start at 1");
            assert!(ids.insert(id), "request ids are unique");
            let (response, report) = t.wait_with_trace().unwrap();
            assert!(response.results().is_some());
            let report = report.expect("tracing on yields a report");
            assert_eq!(report.request_id, id);
            assert_eq!(report.op, "atsq");
            assert_eq!(report.status, "ok");
            assert_eq!(
                report.stage_ns.iter().sum::<u64>(),
                report.total_ns,
                "stage breakdown telescopes exactly to the trace latency"
            );
            assert!(!report.counters.is_zero(), "cache misses did engine work");
            summed = summed.add(&report.counters);
        }
        assert_eq!(
            EngineCounters::from(summed),
            handle.engine().counters(),
            "per-query deltas sum to the engine's lifetime totals"
        );
        // Threshold zero records every traced request in the slow log,
        // and the wire-facing entries keep the exact breakdown.
        let entries = handle.slowlog();
        assert_eq!(entries.len(), queries.len());
        for e in &entries {
            assert_eq!(e.report.stage_ns.iter().sum::<u64>(), e.report.total_ns);
        }
    }

    #[test]
    fn tracing_off_yields_no_reports_and_an_empty_slowlog() {
        let (service, queries) = tiny_service(ServiceConfig {
            workers: 1,
            tracing: false,
            slowlog_threshold: Duration::ZERO,
            ..ServiceConfig::default()
        });
        let handle = service.handle();
        let ticket = handle
            .submit(Request::Atsq {
                query: queries[0].clone(),
                k: 3,
            })
            .unwrap();
        assert!(ticket.request_id() > 0, "ids are assigned regardless");
        let (response, report) = ticket.wait_with_trace().unwrap();
        assert!(response.results().is_some());
        assert!(report.is_none(), "no tracing, no report");
        assert!(handle.slowlog().is_empty());
        service.shutdown();
    }

    /// A registry with `n` lazily-built in-memory cities (distinct
    /// seeds, so distinct datasets and answers), named `city0..`.
    fn lazy_registry(n: usize, budget: Option<u64>) -> Arc<CityRegistry> {
        let registry = Arc::new(CityRegistry::new(CityId::new("city0").unwrap(), budget));
        for i in 0..n {
            let city = CityId::new(format!("city{i}")).unwrap();
            registry
                .add_city(
                    city,
                    Arc::new(move || {
                        let dataset = generate(&CityConfig::tiny(100 + i as u64)).unwrap();
                        let (engine, _) = Engine::build_gat(&dataset, 1, Partition::Hash, None)
                            .map_err(|e| e.to_string())?;
                        Ok(atsq_tenant::LoadedCity {
                            dataset: Arc::new(dataset),
                            engine: Arc::new(engine),
                            loaded_from_snapshot: false,
                        })
                    }),
                )
                .unwrap();
        }
        registry
    }

    /// Every city in a multi-city service answers exactly as a
    /// dedicated single-city service over the same dataset would.
    #[test]
    fn per_city_answers_match_dedicated_servers() {
        let registry = lazy_registry(3, None);
        let service = Service::start_registry(
            registry,
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        );
        let handle = service.handle();
        for i in 0..3usize {
            let name = format!("city{i}");
            let dataset = generate(&CityConfig::tiny(100 + i as u64)).unwrap();
            let queries = generate_queries(&dataset, &QueryGenConfig::default(), 4);
            let dedicated = Service::build(dataset, ServiceConfig::default()).unwrap();
            for q in &queries {
                let req = Request::Atsq {
                    query: q.clone(),
                    k: 5,
                };
                let lease = handle.resolve_city(Some(&name)).unwrap();
                let ticket = handle.submit_leased(lease, req.clone(), None).unwrap();
                let via_multi = ticket.wait().unwrap();
                let via_dedicated = dedicated.handle().call(req).unwrap();
                assert_eq!(
                    via_multi.results().unwrap(),
                    via_dedicated.results().unwrap(),
                    "{name}"
                );
            }
            dedicated.shutdown();
        }
        let infos = handle.cities();
        assert_eq!(infos.len(), 3);
        for info in &infos {
            assert_eq!(info.queries, 4, "{info:?}");
        }
        service.shutdown();
    }

    /// The result cache is partitioned by city: the same wire query
    /// never leaks another city's cached answer.
    #[test]
    fn result_cache_is_partitioned_per_city() {
        let registry = lazy_registry(2, None);
        let service = Service::start_registry(
            registry,
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
        );
        let handle = service.handle();
        // One query shaped to decode in both cities (raw activity id 0
        // exists in both vocabularies).
        let query = Query::new(vec![atsq_types::QueryPoint::new(
            atsq_types::Point::new(5.0, 5.0),
            atsq_types::ActivitySet::from_ids([atsq_types::ActivityId(0)]),
        )])
        .unwrap();
        let ask = |city: &str| {
            let lease = handle.resolve_city(Some(city)).unwrap();
            let ticket = handle
                .submit_leased(
                    lease,
                    Request::Atsq {
                        query: query.clone(),
                        k: 5,
                    },
                    None,
                )
                .unwrap();
            ticket.wait().unwrap()
        };
        let a1 = ask("city0");
        let b1 = ask("city1");
        // Identical request text, different datasets: different answers.
        assert_ne!(a1.results().unwrap(), b1.results().unwrap());
        // Re-asking hits each city's own partition and repeats its own
        // answer (the second round must be served cached).
        let a2 = ask("city0");
        let b2 = ask("city1");
        assert_eq!(a1.results().unwrap(), a2.results().unwrap());
        assert_eq!(b1.results().unwrap(), b2.results().unwrap());
        assert!(a2.is_cached() && b2.is_cached(), "{a2:?} {b2:?}");
        service.shutdown();
    }

    /// The per-city in-flight cap sheds load for one hot city without
    /// touching the shared queue or other cities.
    #[test]
    fn city_inflight_cap_rejects_the_hot_city_only() {
        let registry = lazy_registry(2, None);
        // No workers: submissions hold their leases in the queue.
        let service = Service::start_registry(
            registry,
            ServiceConfig {
                workers: 0,
                city_inflight_cap: 2,
                ..ServiceConfig::default()
            },
        );
        let handle = service.handle();
        let submit_to = |city: &str| {
            let dataset = handle.resolve_city(Some(city)).unwrap().dataset().clone();
            let q = generate_queries(&dataset, &QueryGenConfig::default(), 1)
                .pop()
                .unwrap();
            let lease = handle.resolve_city(Some(city)).unwrap();
            handle.submit_leased(lease, Request::Atsq { query: q, k: 3 }, None)
        };
        let _t1 = submit_to("city0").unwrap();
        let _t2 = submit_to("city0").unwrap();
        match submit_to("city0") {
            Err(SubmitError::CityOverloaded(city)) => assert_eq!(city.as_str(), "city0"),
            other => panic!("unexpected {other:?}"),
        }
        // The cold city still admits.
        assert!(submit_to("city1").is_ok());
        assert_eq!(handle.stats().rejected, 1);
        service.shutdown();
    }

    /// An unknown city surfaces as a structured submit error.
    #[test]
    fn unknown_city_is_a_submit_error() {
        let (service, _) = tiny_service(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let handle = service.handle();
        match handle.resolve_city(Some("atlantis")) {
            Err(TenantError::UnknownCity(city)) => assert_eq!(city.as_str(), "atlantis"),
            other => panic!("unexpected {other:?}"),
        }
        // Invalid names are refused before touching the registry.
        assert!(handle.resolve_city(Some("no/slashes")).is_err());
        service.shutdown();
    }
}
