//! The request/response vocabulary of the service, and cache-key
//! canonicalisation.

use atsq_types::{Query, QueryResult};
use std::sync::Arc;

/// One query request: the paper's two query types plus their
//  threshold variants, behind a single enum.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Top-`k` by `Dmm` (order-insensitive).
    Atsq {
        /// The query locations and activities.
        query: Query,
        /// Result-set size.
        k: usize,
    },
    /// Top-`k` by `Dmom` (order-sensitive).
    Oatsq {
        /// The query locations and activities, in visiting order.
        query: Query,
        /// Result-set size.
        k: usize,
    },
    /// Every trajectory with `Dmm ≤ tau`.
    AtsqRange {
        /// The query locations and activities.
        query: Query,
        /// Distance threshold in km.
        tau: f64,
    },
    /// Every trajectory with `Dmom ≤ tau`.
    OatsqRange {
        /// The query locations and activities, in visiting order.
        query: Query,
        /// Distance threshold in km.
        tau: f64,
    },
}

impl Request {
    /// The query inside the request.
    pub fn query(&self) -> &Query {
        match self {
            Request::Atsq { query, .. }
            | Request::Oatsq { query, .. }
            | Request::AtsqRange { query, .. }
            | Request::OatsqRange { query, .. } => query,
        }
    }

    /// Short label for logs and stats ("atsq", "oatsq", …).
    pub fn op(&self) -> &'static str {
        match self {
            Request::Atsq { .. } => "atsq",
            Request::Oatsq { .. } => "oatsq",
            Request::AtsqRange { .. } => "atsq_range",
            Request::OatsqRange { .. } => "oatsq_range",
        }
    }

    /// The canonical cache key for this request. Two requests that are
    /// guaranteed to produce identical results map to the same key; in
    /// particular the order-insensitive variants sort their stops, so
    /// any permutation of the same ATSQ hits the same cache line.
    pub fn cache_key(&self) -> CacheKey {
        let (kind, query, param) = match self {
            Request::Atsq { query, k } => (Kind::Atsq, query, *k as u64),
            Request::Oatsq { query, k } => (Kind::Oatsq, query, *k as u64),
            Request::AtsqRange { query, tau } => (Kind::AtsqRange, query, tau.to_bits()),
            Request::OatsqRange { query, tau } => (Kind::OatsqRange, query, tau.to_bits()),
        };
        let mut stops: Vec<CanonicalStop> = query
            .points
            .iter()
            .map(|p| {
                // Activity ids inside an ActivitySet are already sorted.
                CanonicalStop {
                    x: p.loc.x.to_bits(),
                    y: p.loc.y.to_bits(),
                    acts: p.activities.iter().map(|a| a.0).collect(),
                }
            })
            .collect();
        if matches!(kind, Kind::Atsq | Kind::AtsqRange) {
            stops.sort_unstable();
        }
        CacheKey { kind, param, stops }
    }
}

/// Request kind discriminant inside a [`CacheKey`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Kind {
    Atsq,
    Oatsq,
    AtsqRange,
    OatsqRange,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct CanonicalStop {
    x: u64,
    y: u64,
    acts: Vec<u32>,
}

/// Canonicalised request identity: hashable/equatable, with
/// location coordinates compared bit-exactly and order-insensitive
/// request kinds normalised to a sorted stop list.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    kind: Kind,
    /// `k` for top-k requests, `tau.to_bits()` for range requests.
    param: u64,
    stops: Vec<CanonicalStop>,
}

/// The service's answer to one request.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request executed (or was answered from the cache).
    Ok {
        /// Ranked results, ascending by distance.
        results: Arc<Vec<QueryResult>>,
        /// Whether the answer came from the result cache.
        cached: bool,
    },
    /// The deadline passed before a worker picked the request up.
    Expired,
    /// Execution panicked; the service stayed up and the panic is
    /// reported instead of propagated.
    Failed {
        /// The panic message.
        error: String,
    },
}

impl Response {
    /// The results when the response is `Ok`.
    pub fn results(&self) -> Option<&[QueryResult]> {
        match self {
            Response::Ok { results, .. } => Some(results),
            Response::Expired | Response::Failed { .. } => None,
        }
    }

    /// Whether the response was served from the cache.
    pub fn is_cached(&self) -> bool {
        matches!(self, Response::Ok { cached: true, .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsq_types::{ActivitySet, Point, QueryPoint};

    fn qp(x: f64, y: f64, acts: &[u32]) -> QueryPoint {
        QueryPoint::new(
            Point::new(x, y),
            ActivitySet::from_raw(acts.iter().copied()),
        )
    }

    fn q(points: Vec<QueryPoint>) -> Query {
        Query::new(points).unwrap()
    }

    #[test]
    fn atsq_key_is_stop_order_insensitive() {
        let a = Request::Atsq {
            query: q(vec![qp(0.0, 0.0, &[1, 2]), qp(5.0, 5.0, &[3])]),
            k: 4,
        };
        let b = Request::Atsq {
            query: q(vec![qp(5.0, 5.0, &[3]), qp(0.0, 0.0, &[1, 2])]),
            k: 4,
        };
        assert_eq!(a.cache_key(), b.cache_key());
    }

    #[test]
    fn oatsq_key_is_stop_order_sensitive() {
        let a = Request::Oatsq {
            query: q(vec![qp(0.0, 0.0, &[1]), qp(5.0, 5.0, &[3])]),
            k: 4,
        };
        let b = Request::Oatsq {
            query: q(vec![qp(5.0, 5.0, &[3]), qp(0.0, 0.0, &[1])]),
            k: 4,
        };
        assert_ne!(a.cache_key(), b.cache_key());
    }

    #[test]
    fn k_kind_and_tau_separate_keys() {
        let query = q(vec![qp(1.0, 2.0, &[7])]);
        let k5 = Request::Atsq {
            query: query.clone(),
            k: 5,
        };
        let k9 = Request::Atsq {
            query: query.clone(),
            k: 9,
        };
        let o5 = Request::Oatsq {
            query: query.clone(),
            k: 5,
        };
        let r = Request::AtsqRange {
            query: query.clone(),
            tau: 5.0,
        };
        let r2 = Request::AtsqRange { query, tau: 6.0 };
        assert_ne!(k5.cache_key(), k9.cache_key());
        assert_ne!(k5.cache_key(), o5.cache_key());
        assert_ne!(k5.cache_key(), r.cache_key());
        assert_ne!(r.cache_key(), r2.cache_key());
    }

    #[test]
    fn ops_are_labelled() {
        let query = q(vec![qp(0.0, 0.0, &[1])]);
        assert_eq!(
            Request::Atsq {
                query: query.clone(),
                k: 1
            }
            .op(),
            "atsq"
        );
        assert_eq!(
            Request::Oatsq {
                query: query.clone(),
                k: 1
            }
            .op(),
            "oatsq"
        );
        assert_eq!(
            Request::AtsqRange {
                query: query.clone(),
                tau: 1.0
            }
            .op(),
            "atsq_range"
        );
        assert_eq!(Request::OatsqRange { query, tau: 1.0 }.op(), "oatsq_range");
    }
}
