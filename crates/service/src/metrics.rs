//! Prometheus text rendering of the service's metric surface.
//!
//! One function, [`render`], turns a [`StatsSnapshot`] (plus the
//! per-shard busy times, the slow-log depth and the startup
//! provenance) into the exposition text served by the wire `metrics`
//! op and the `atsq metrics` CLI. Metric names are stable API:
//!
//! * `atsq_requests_*_total` — admission/terminal request counters.
//! * `atsq_cache_*` — result-cache traffic and hit rate.
//! * `atsq_queue_depth`, `atsq_inflight_requests`, `atsq_qps`,
//!   `atsq_uptime_seconds` — live serving state.
//! * `atsq_latency_seconds` — end-to-end latency histogram
//!   (power-of-two-microsecond buckets).
//! * `atsq_stage_seconds_total{stage=…}` — time per request stage
//!   ([`atsq_obs::Stage`]) across traced requests.
//! * `atsq_serialize_seconds_total` — response wire-encode time.
//! * `atsq_engine_*_total`, `atsq_engine_prune_ratio` — engine work
//!   counters (pruning attribution).
//! * `atsq_shard_candidates_total{shard=…}`,
//!   `atsq_shard_busy_seconds_total{shard=…}` — per-shard load.
//! * `atsq_router_busy_seconds_total` — time the sharded engine's
//!   shared candidate traversal spent routing (absent unsharded).
//! * `atsq_slowlog_entries` — slow-query log depth.
//! * `atsq_index_startup_seconds`, `atsq_index_loaded_from_snapshot`
//!   — cold-start provenance.
//! * `atsq_city_*{city=…}` — per-city tenancy state: lifecycle code,
//!   resident bytes, in-flight requests, query/load/eviction counters,
//!   cumulative load time, and engine candidate counts.

use crate::service::StartupInfo;
use crate::stats::StatsSnapshot;
use atsq_obs::{PromText, Stage};
use atsq_tenant::CityInfo;

/// Renders the full metrics surface in Prometheus text format.
pub fn render(
    snap: &StatsSnapshot,
    shard_busy_ns: &[u64],
    router_busy_ns: Option<u64>,
    slowlog_len: usize,
    startup: StartupInfo,
    cities: &[CityInfo],
) -> String {
    let mut p = PromText::new();

    p.counter(
        "atsq_requests_submitted_total",
        "Requests admitted to the queue.",
        snap.submitted,
    );
    p.counter(
        "atsq_requests_completed_total",
        "Requests answered ok (cache hits included).",
        snap.completed,
    );
    p.counter(
        "atsq_requests_rejected_total",
        "Requests refused at admission (queue full).",
        snap.rejected,
    );
    p.counter(
        "atsq_requests_expired_total",
        "Requests whose deadline passed before reply.",
        snap.expired,
    );
    p.counter(
        "atsq_requests_failed_total",
        "Requests whose execution panicked.",
        snap.failed,
    );
    p.counter(
        "atsq_requests_coalesced_total",
        "Requests coalesced onto an identical in-batch request.",
        snap.coalesced,
    );

    p.counter(
        "atsq_cache_hits_total",
        "Requests answered from the result cache.",
        snap.cache_hits,
    );
    p.counter(
        "atsq_cache_misses_total",
        "Requests that ran on the engine.",
        snap.cache_misses,
    );
    p.gauge(
        "atsq_cache_hit_rate",
        "Cache hits over cache-eligible completions.",
        snap.cache_hit_rate(),
    );

    p.gauge(
        "atsq_queue_depth",
        "Requests waiting in the bounded queue.",
        snap.queue_depth as f64,
    );
    p.gauge(
        "atsq_inflight_requests",
        "Admitted requests not yet terminally answered.",
        snap.inflight as f64,
    );
    p.gauge(
        "atsq_qps",
        "Completed requests per second since the previous snapshot.",
        snap.qps,
    );
    p.gauge(
        "atsq_uptime_seconds",
        "Time since the service started.",
        snap.uptime.as_secs_f64(),
    );

    p.counter(
        "atsq_batches_total",
        "Micro-batches drained by workers.",
        snap.batches,
    );
    p.counter(
        "atsq_batched_requests_total",
        "Requests across all drained micro-batches.",
        snap.batched_requests,
    );

    // Histogram bucket i counts completions in [2^i, 2^(i+1)) µs; the
    // exposition's inclusive `le` bound is the bucket's upper edge.
    let upper_bounds: Vec<f64> = (0..snap.latency_buckets.len())
        .map(|i| (1u128 << (i + 1)) as f64 / 1e6)
        .collect();
    p.histogram(
        "atsq_latency_seconds",
        "End-to-end (enqueue to reply) request latency.",
        &upper_bounds,
        &snap.latency_buckets,
        snap.latency_sum_us as f64 / 1e6,
        snap.completed,
    );

    p.counter_family_f64(
        "atsq_stage_seconds_total",
        "Time per request stage across traced requests.",
        "stage",
        Stage::ALL
            .iter()
            .map(|&s| (s.name().to_owned(), snap.stage_ns[s as usize] as f64 / 1e9)),
    );
    p.counter_f64(
        "atsq_serialize_seconds_total",
        "Response wire-serialisation time.",
        snap.serialize_ns as f64 / 1e9,
    );
    p.counter(
        "atsq_serialize_responses_total",
        "Responses whose serialisation was timed.",
        snap.serialize_count,
    );

    p.counter(
        "atsq_engine_candidates_total",
        "Candidate trajectories considered.",
        snap.engine.candidates,
    );
    p.counter(
        "atsq_engine_distance_evals_total",
        "Full match-distance evaluations.",
        snap.engine.distance_evals,
    );
    p.counter(
        "atsq_engine_tas_pruned_total",
        "Candidates discarded by the TAS sketch.",
        snap.engine.tas_pruned,
    );
    p.counter(
        "atsq_engine_tas_false_positives_total",
        "TAS passes later refuted by the APL.",
        snap.engine.tas_false_positives,
    );
    p.counter(
        "atsq_engine_apl_reads_total",
        "APL posting-list fetches.",
        snap.engine.apl_reads,
    );
    p.counter(
        "atsq_engine_cold_reads_total",
        "Cold HICL accesses (disk-modelled index pages).",
        snap.engine.cold_reads,
    );
    p.gauge(
        "atsq_engine_prune_ratio",
        "Fraction of candidates eliminated before a distance evaluation.",
        snap.engine.prune_ratio(),
    );

    p.counter_family(
        "atsq_shard_candidates_total",
        "Candidate trajectories per index shard.",
        "shard",
        snap.shard_candidates
            .iter()
            .enumerate()
            .map(|(i, &c)| (i.to_string(), c)),
    );
    if !shard_busy_ns.is_empty() {
        p.counter_family_f64(
            "atsq_shard_busy_seconds_total",
            "Engine busy time per index shard.",
            "shard",
            shard_busy_ns
                .iter()
                .enumerate()
                .map(|(i, &ns)| (i.to_string(), ns as f64 / 1e9)),
        );
    }
    if let Some(ns) = router_busy_ns {
        p.counter_f64(
            "atsq_router_busy_seconds_total",
            "Shared-traversal candidate routing time (sharded engine).",
            ns as f64 / 1e9,
        );
    }

    p.gauge(
        "atsq_slowlog_entries",
        "Entries currently held by the slow-query log.",
        slowlog_len as f64,
    );

    if let Some(build) = startup.engine_build {
        p.gauge(
            "atsq_index_startup_seconds",
            "Engine build or snapshot-load time at service start.",
            build.as_secs_f64(),
        );
    }
    if let Some(loaded) = startup.loaded_from_snapshot {
        p.gauge(
            "atsq_index_loaded_from_snapshot",
            "1 when the index came from a persistent snapshot, 0 when rebuilt.",
            if loaded { 1.0 } else { 0.0 },
        );
    }

    if !cities.is_empty() {
        let name = |c: &CityInfo| c.city.as_str().to_owned();
        p.gauge_family(
            "atsq_city_state",
            "City lifecycle state (0 unloaded, 1 loading, 2 ready, 3 evicted).",
            "city",
            cities.iter().map(|c| (name(c), c.state.code() as f64)),
        );
        p.gauge_family(
            "atsq_city_resident_bytes",
            "Estimated resident memory per city (dataset plus index).",
            "city",
            cities.iter().map(|c| (name(c), c.resident_bytes as f64)),
        );
        p.gauge_family(
            "atsq_city_inflight",
            "Leases currently held against each city.",
            "city",
            cities.iter().map(|c| (name(c), c.inflight as f64)),
        );
        p.counter_family(
            "atsq_city_queries_total",
            "Queries resolved against each city.",
            "city",
            cities.iter().map(|c| (name(c), c.queries)),
        );
        p.counter_family(
            "atsq_city_loads_total",
            "Successful engine loads (cold starts) per city.",
            "city",
            cities.iter().map(|c| (name(c), c.loads)),
        );
        p.counter_family(
            "atsq_city_evictions_total",
            "Budget-pressure evictions per city.",
            "city",
            cities.iter().map(|c| (name(c), c.evictions)),
        );
        p.counter_family_f64(
            "atsq_city_load_seconds_total",
            "Cumulative engine build/load time per city.",
            "city",
            cities.iter().map(|c| (name(c), c.load_ms_total / 1e3)),
        );
        p.counter_family(
            "atsq_city_candidates_total",
            "Candidate trajectories considered per city.",
            "city",
            cities.iter().map(|c| (name(c), c.counters.candidates)),
        );
    }

    p.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ServiceStats;
    use atsq_core::EngineCounters;
    use std::time::Duration;

    #[test]
    fn renders_every_family_with_consistent_values() {
        let stats = ServiceStats::default();
        stats.record_submitted();
        stats.record_submitted();
        stats.record_cache_miss();
        stats.record_completed(Duration::from_millis(3));
        stats.record_serialize(2_000_000);
        let snap = stats.snapshot(
            1,
            EngineCounters {
                candidates: 10,
                distance_evals: 4,
                ..EngineCounters::default()
            },
            vec![6, 4],
        );
        let text = render(
            &snap,
            &[1_500_000_000, 500_000_000],
            Some(250_000_000),
            3,
            StartupInfo {
                engine_build: Some(Duration::from_millis(250)),
                loaded_from_snapshot: Some(true),
            },
            &[],
        );
        assert!(text.contains("atsq_requests_submitted_total 2\n"), "{text}");
        assert!(text.contains("atsq_requests_completed_total 1\n"));
        assert!(text.contains("atsq_inflight_requests 1\n"));
        assert!(text.contains("atsq_queue_depth 1\n"));
        assert!(text.contains("atsq_engine_candidates_total 10\n"));
        assert!(text.contains("atsq_engine_prune_ratio 0.6\n"));
        assert!(text.contains("atsq_shard_candidates_total{shard=\"0\"} 6\n"));
        assert!(text.contains("atsq_shard_busy_seconds_total{shard=\"0\"} 1.5\n"));
        assert!(text.contains("atsq_router_busy_seconds_total 0.25\n"));
        assert!(text.contains("atsq_slowlog_entries 3\n"));
        assert!(text.contains("atsq_index_startup_seconds 0.25\n"));
        assert!(text.contains("atsq_index_loaded_from_snapshot 1\n"));
        assert!(text.contains("atsq_serialize_seconds_total 0.002\n"));
        // One latency observation at 3 ms: count 1, +Inf bucket 1, and
        // the 3 ms observation is inside the ≤4.096 ms bucket.
        assert!(text.contains("atsq_latency_seconds_count 1\n"));
        assert!(text.contains("atsq_latency_seconds_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("atsq_latency_seconds_bucket{le=\"0.004096\"} 1\n"));
        // Every stage label appears.
        for stage in ["admission", "queue", "cache", "assembly", "engine", "reply"] {
            assert!(
                text.contains(&format!("atsq_stage_seconds_total{{stage=\"{stage}\"}}")),
                "missing stage {stage}: {text}"
            );
        }
    }

    #[test]
    fn startup_metrics_absent_without_provenance() {
        let stats = ServiceStats::default();
        let snap = stats.snapshot(0, EngineCounters::default(), vec![0]);
        let text = render(&snap, &[], None, 0, StartupInfo::default(), &[]);
        assert!(!text.contains("atsq_index_startup_seconds"));
        assert!(!text.contains("atsq_index_loaded_from_snapshot"));
        assert!(!text.contains("atsq_shard_busy_seconds_total"));
        assert!(!text.contains("atsq_router_busy_seconds_total"));
        assert!(!text.contains("atsq_city_state"));
    }

    #[test]
    fn city_families_render_per_city_samples() {
        use atsq_tenant::{CityId, TenantState};
        let stats = ServiceStats::default();
        let snap = stats.snapshot(0, EngineCounters::default(), vec![0]);
        let cities = vec![
            CityInfo {
                city: CityId::new("tokyo").unwrap(),
                state: TenantState::Ready,
                pinned: false,
                resident_bytes: 4096,
                inflight: 2,
                queries: 17,
                loads: 3,
                evictions: 2,
                load_ms_total: 1500.0,
                loaded_from_snapshot: true,
                counters: EngineCounters {
                    candidates: 9,
                    ..EngineCounters::default()
                },
                last_error: None,
            },
            CityInfo {
                city: CityId::new("osaka").unwrap(),
                state: TenantState::Evicted,
                pinned: false,
                resident_bytes: 0,
                inflight: 0,
                queries: 4,
                loads: 1,
                evictions: 1,
                load_ms_total: 200.0,
                loaded_from_snapshot: false,
                counters: EngineCounters::default(),
                last_error: None,
            },
        ];
        let text = render(&snap, &[], None, 0, StartupInfo::default(), &cities);
        assert!(
            text.contains("atsq_city_state{city=\"tokyo\"} 2\n"),
            "{text}"
        );
        assert!(text.contains("atsq_city_state{city=\"osaka\"} 3\n"));
        assert!(text.contains("atsq_city_resident_bytes{city=\"tokyo\"} 4096\n"));
        assert!(text.contains("atsq_city_inflight{city=\"tokyo\"} 2\n"));
        assert!(text.contains("atsq_city_queries_total{city=\"tokyo\"} 17\n"));
        assert!(text.contains("atsq_city_loads_total{city=\"osaka\"} 1\n"));
        assert!(text.contains("atsq_city_evictions_total{city=\"osaka\"} 1\n"));
        assert!(text.contains("atsq_city_load_seconds_total{city=\"tokyo\"} 1.5\n"));
        assert!(text.contains("atsq_city_candidates_total{city=\"tokyo\"} 9\n"));
    }
}
