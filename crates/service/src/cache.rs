//! A fixed-capacity LRU map for query results.
//!
//! Classic O(1) design: a `HashMap` from key to slot index, plus an
//! intrusive doubly-linked recency list threaded through a slab of
//! entries. No external crates, no unsafe.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

/// What happened to an [`LruCache::insert`].
///
/// The three non-trivial outcomes were previously conflated into one
/// `Option<V>` return, making "my old value was replaced", "someone
/// else's entry was evicted" and "the cache is disabled" impossible to
/// tell apart at the call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertOutcome<K, V> {
    /// The key was new and there was room; nothing was displaced.
    Inserted,
    /// The key already existed; its previous value is returned and the
    /// entry was refreshed to most-recently-used.
    Replaced(V),
    /// The key was new and the cache was full; the least-recently-used
    /// entry (a *different* key) was evicted to make room.
    Evicted(K, V),
    /// The cache has capacity zero; the value was not stored.
    Dropped(V),
}

#[derive(Debug)]
struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A least-recently-used cache with a fixed entry capacity.
///
/// `get` refreshes recency; `insert` evicts the coldest entry when
/// full. A capacity of zero disables the cache (every insert is
/// dropped, every get misses).
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Entry<K, V>>,
    /// Most recently used.
    head: usize,
    /// Least recently used.
    tail: usize,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let &slot = self.map.get(key)?;
        self.detach(slot);
        self.attach_front(slot);
        Some(&self.slab[slot].value)
    }

    /// Inserts or refreshes `key`, evicting the least recently used
    /// entry if the cache is full. The [`InsertOutcome`] distinguishes
    /// replacement, eviction and the capacity-zero drop.
    pub fn insert(&mut self, key: K, value: V) -> InsertOutcome<K, V> {
        if self.capacity == 0 {
            return InsertOutcome::Dropped(value);
        }
        if let Some(&slot) = self.map.get(&key) {
            let old = std::mem::replace(&mut self.slab[slot].value, value);
            self.detach(slot);
            self.attach_front(slot);
            return InsertOutcome::Replaced(old);
        }
        if self.map.len() == self.capacity {
            // Reuse the coldest slot.
            let slot = self.tail;
            self.detach(slot);
            let entry = &mut self.slab[slot];
            self.map.remove(&entry.key);
            let old_key = std::mem::replace(&mut entry.key, key.clone());
            let old = std::mem::replace(&mut entry.value, value);
            self.map.insert(key, slot);
            self.attach_front(slot);
            InsertOutcome::Evicted(old_key, old)
        } else {
            let slot = self.slab.len();
            self.slab.push(Entry {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.map.insert(key, slot);
            self.attach_front(slot);
            InsertOutcome::Inserted
        }
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.slab[slot].prev, self.slab[slot].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slab[slot].prev = NIL;
        self.slab[slot].next = NIL;
    }

    fn attach_front(&mut self, slot: usize) {
        self.slab[slot].next = self.head;
        self.slab[slot].prev = NIL;
        if self.head != NIL {
            self.slab[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_eviction_order() {
        let mut c = LruCache::new(2);
        assert!(c.is_empty());
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1)); // refresh a; b is now coldest
        c.insert("c", 3); // evicts b
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_and_replaces() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.insert("a", 10), InsertOutcome::Replaced(1)); // refresh a; b coldest
        c.insert("c", 3); // evicts b
        assert_eq!(c.get(&"a"), Some(&10));
        assert_eq!(c.get(&"b"), None);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = LruCache::new(0);
        assert_eq!(c.insert("a", 1), InsertOutcome::Dropped(1));
        assert_eq!(c.get(&"a"), None);
        assert_eq!(c.len(), 0);
    }

    /// The three formerly conflated `insert` outcomes, told apart.
    #[test]
    fn insert_outcomes_are_distinguished() {
        // Plain insert with room.
        let mut c = LruCache::new(2);
        assert_eq!(c.insert("a", 1), InsertOutcome::Inserted);
        assert_eq!(c.insert("b", 2), InsertOutcome::Inserted);

        // Same-key replacement: NOT an eviction — both keys stay
        // resident and the cache is unchanged in size.
        assert_eq!(c.insert("b", 20), InsertOutcome::Replaced(2));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&"a"), Some(&1));

        // True LRU eviction: a *different* key is displaced, and the
        // outcome names which one.
        c.get(&"b"); // refresh b; a is now coldest
        assert_eq!(c.insert("c", 3), InsertOutcome::Evicted("a", 1));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&"a"), None);
        assert_eq!(c.get(&"b"), Some(&20));
        assert_eq!(c.get(&"c"), Some(&3));

        // Capacity-zero drop: the value never entered the cache, so
        // nothing was replaced or evicted.
        let mut off: LruCache<&str, i32> = LruCache::new(0);
        assert_eq!(off.insert("x", 9), InsertOutcome::Dropped(9));
        assert!(off.is_empty());

        // Replacing into a full cache repeatedly never reports an
        // eviction (regression: Option<V> made this look identical).
        let mut c = LruCache::new(1);
        assert_eq!(c.insert("k", 1), InsertOutcome::Inserted);
        for v in 2..10 {
            assert_eq!(c.insert("k", v), InsertOutcome::Replaced(v - 1));
        }
        assert_eq!(c.insert("other", 0), InsertOutcome::Evicted("k", 9));
    }

    #[test]
    fn single_slot_cycles() {
        let mut c = LruCache::new(1);
        for i in 0..100 {
            c.insert(i, i);
            assert_eq!(c.get(&i), Some(&i));
            if i > 0 {
                assert_eq!(c.get(&(i - 1)), None);
            }
            assert_eq!(c.len(), 1);
        }
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn stress_against_model() {
        // Compare with a naive model under a deterministic workload.
        let cap = 8;
        let mut c = LruCache::new(cap);
        let mut model: Vec<(u64, u64)> = Vec::new(); // front = MRU
        let mut x: u64 = 0x2545F4914F6CDD1D;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 24;
            if x & 1 == 0 {
                // insert
                model.retain(|&(k, _)| k != key);
                model.insert(0, (key, key * 3));
                model.truncate(cap);
                c.insert(key, key * 3);
            } else {
                // get
                let want = model.iter().position(|&(k, _)| k == key);
                let got = c.get(&key).copied();
                match want {
                    Some(pos) => {
                        assert_eq!(got, Some(key * 3));
                        let e = model.remove(pos);
                        model.insert(0, e);
                    }
                    None => assert_eq!(got, None),
                }
            }
            assert_eq!(c.len(), model.len());
        }
    }
}
