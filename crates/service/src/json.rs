//! A minimal JSON value, parser and writer.
//!
//! The wire protocol needs only a safe, allocation-friendly subset:
//! objects, arrays, strings, finite numbers, booleans and null. No
//! external crates; objects preserve insertion order.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (insertion-ordered).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises to compact JSON. Non-finite numbers become `null`
    /// (JSON has no representation for them).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => {
                if n.is_finite() {
                    // `{}` on f64 is the shortest roundtrip form.
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document, requiring it to span the whole input.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// A parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the failure.
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_owned(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        let n: f64 = text.parse().map_err(|_| self.err("bad number"))?;
        if !n.is_finite() {
            return Err(self.err("non-finite number"));
        }
        Ok(Value::Num(n))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are replaced, not paired — fine
                            // for this protocol (we never emit them).
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Convenience constructor for object values.
pub fn obj(members: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_structures() {
        let v = obj(vec![
            ("op", Value::Str("atsq".into())),
            ("k", Value::Num(9.0)),
            ("neg", Value::Num(-2.5)),
            ("flag", Value::Bool(true)),
            ("nothing", Value::Null),
            (
                "stops",
                Value::Arr(vec![obj(vec![
                    ("x", Value::Num(1.25)),
                    ("acts", Value::Arr(vec![Value::Str("a\"b\\c\n".into())])),
                ])]),
            ),
        ]);
        let text = v.to_json();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"a\" : [ 1 , 2.5e1 , \"\\u0041\\t\" ] } ").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap(),
            &[Value::Num(1.0), Value::Num(25.0), Value::Str("A\t".into())]
        );
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"n":3,"s":"x","b":false,"a":[]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_usize(), Some(3));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("a").unwrap().as_arr(), Some(&[][..]));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Num(1.5).as_usize(), None);
        assert_eq!(Value::Num(-1.0).as_usize(), None);
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "[]extra",
            "{\"a\":}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let mut s = String::new();
        for _ in 0..200 {
            s.push('[');
        }
        assert!(parse(&s).is_err());
    }

    #[test]
    fn float_roundtrip_precision() {
        for n in [0.1, 1e-9, 123456789.123, f64::MAX / 2.0, -0.0] {
            let text = Value::Num(n).to_json();
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(n, back, "{text}");
        }
    }
}
