//! Service-level counters and latency percentiles.
//!
//! All counters are lock-free atomics updated by workers and read by
//! anyone; latency quantiles come from a fixed log-scale histogram
//! (power-of-two microsecond buckets), so recording is wait-free and
//! a snapshot costs one pass over 40 buckets.

use atsq_core::EngineCounters;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

const BUCKETS: usize = 40; // 2^39 µs ≈ 6.4 days — plenty of headroom

/// Shared mutable counters; cheap to update from any worker.
#[derive(Debug)]
pub struct ServiceStats {
    started: Instant,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    expired: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    coalesced: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    /// Histogram of end-to-end (enqueue → reply) latency in µs.
    latency_us: [AtomicU64; BUCKETS],
    /// `(uptime µs, completion count)` at the previous snapshot —
    /// behind one mutex so concurrent snapshot takers cannot pair one
    /// caller's time window with another's completion window.
    /// Snapshots are a cold path; the hot-path counters stay lock-free.
    window: std::sync::Mutex<(u64, u64)>,
}

impl Default for ServiceStats {
    fn default() -> Self {
        ServiceStats {
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            latency_us: std::array::from_fn(|_| AtomicU64::new(0)),
            window: std::sync::Mutex::new((0, 0)),
        }
    }
}

impl ServiceStats {
    /// One request admitted to the queue.
    pub fn record_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// One request refused at admission (queue full).
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// One request whose deadline passed before execution.
    pub fn record_expired(&self) {
        self.expired.fetch_add(1, Ordering::Relaxed);
    }

    /// One request answered from the result cache.
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// One request that missed the cache and ran on the engine.
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// One request served by coalescing onto an identical in-batch
    /// request (no engine work, no LRU involvement).
    pub fn record_coalesced(&self) {
        self.coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// One request whose execution panicked (reported, not fatal).
    pub fn record_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// One batch of `n` requests drained by a worker.
    pub fn record_batch(&self, n: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// One request completed with the given enqueue→reply latency.
    pub fn record_completed(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        let us = latency.as_micros().max(1) as u64;
        let bucket = (63 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.latency_us[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Consistent-enough snapshot of every counter (individual loads
    /// are atomic; the set is not, which is fine for monitoring).
    ///
    /// The reported `qps` is **windowed**: completions since the
    /// previous snapshot divided by the time since it (the first
    /// snapshot's window starts at service start). A lifetime average
    /// would be permanently deflated by any idle period. Concurrent
    /// snapshot takers share one window, so a given consumer sees the
    /// rate since *someone* last looked — the usual scrape model.
    pub fn snapshot(
        &self,
        queue_depth: usize,
        engine: EngineCounters,
        shard_candidates: Vec<u64>,
    ) -> StatsSnapshot {
        let hist: Vec<u64> = self
            .latency_us
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let completed = self.completed.load(Ordering::Relaxed);
        let uptime = self.started.elapsed();
        let now_us = uptime.as_micros() as u64;
        let (window_start_us, window_completed) = {
            let mut w = self.window.lock().expect("stats window");
            std::mem::replace(&mut *w, (now_us, completed))
        };
        let window_s = now_us.saturating_sub(window_start_us) as f64 / 1e6;
        let window_delta = completed.saturating_sub(window_completed);
        StatsSnapshot {
            uptime,
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            rejected: self.rejected.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            qps: window_delta as f64 / window_s.max(1e-6),
            p50_ms: percentile_ms(&hist, 0.50),
            p90_ms: percentile_ms(&hist, 0.90),
            p99_ms: percentile_ms(&hist, 0.99),
            queue_depth,
            engine,
            shard_candidates,
        }
    }
}

/// Approximate percentile from the log-bucket histogram, reported as
/// the geometric midpoint of the containing bucket, in milliseconds.
fn percentile_ms(hist: &[u64], p: f64) -> f64 {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let target = ((total as f64) * p).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &count) in hist.iter().enumerate() {
        seen += count;
        if seen >= target {
            // Bucket i covers [2^i, 2^(i+1)) µs.
            let lo = (1u64 << i) as f64;
            return lo * std::f64::consts::SQRT_2 / 1e3;
        }
    }
    unreachable!("target within total");
}

/// Point-in-time view of the service counters.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Time since the service started.
    pub uptime: Duration,
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// Requests answered (cache hits included, expirations excluded).
    pub completed: u64,
    /// Requests refused at admission (queue full).
    pub rejected: u64,
    /// Requests whose deadline passed while queued.
    pub expired: u64,
    /// Requests answered from the result cache.
    pub cache_hits: u64,
    /// Requests that ran on the engine.
    pub cache_misses: u64,
    /// Requests coalesced onto an identical in-batch request.
    pub coalesced: u64,
    /// Requests whose execution panicked (answered `Failed`).
    pub failed: u64,
    /// Batches drained by workers.
    pub batches: u64,
    /// Requests across all drained batches.
    pub batched_requests: u64,
    /// Completed requests per second **since the previous snapshot**
    /// (not a lifetime average — idle periods don't deflate it).
    pub qps: f64,
    /// Median enqueue→reply latency (log-bucket approximation).
    pub p50_ms: f64,
    /// 90th-percentile latency.
    pub p90_ms: f64,
    /// 99th-percentile latency.
    pub p99_ms: f64,
    /// Queue depth at snapshot time.
    pub queue_depth: usize,
    /// Work counters of the underlying engine.
    pub engine: EngineCounters,
    /// Candidate counts per shard — one entry per shard for a sharded
    /// engine, a single aggregate entry otherwise.
    pub shard_candidates: Vec<u64>,
}

impl StatsSnapshot {
    /// Cache hits as a fraction of cache-eligible completions.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Mean requests per drained batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "uptime {:.1}s  submitted {}  completed {}  rejected {}  expired {}",
            self.uptime.as_secs_f64(),
            self.submitted,
            self.completed,
            self.rejected,
            self.expired
        )?;
        writeln!(
            f,
            "qps {:.1}  p50 {:.2} ms  p90 {:.2} ms  p99 {:.2} ms  queue {}",
            self.qps, self.p50_ms, self.p90_ms, self.p99_ms, self.queue_depth
        )?;
        write!(
            f,
            "cache hit rate {:.1}%  coalesced {}  failed {}  mean batch {:.1}  distance evals {}",
            self.cache_hit_rate() * 100.0,
            self.coalesced,
            self.failed,
            self.mean_batch_size(),
            self.engine.distance_evals
        )?;
        if self.shard_candidates.len() > 1 {
            let counts: Vec<String> = self.shard_candidates.iter().map(u64::to_string).collect();
            write!(f, "\nshard candidates [{}]", counts.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = ServiceStats::default();
        s.record_submitted();
        s.record_submitted();
        s.record_rejected();
        s.record_expired();
        s.record_cache_hit();
        s.record_cache_miss();
        s.record_batch(5);
        s.record_completed(Duration::from_micros(800));
        let snap = s.snapshot(3, EngineCounters::default(), vec![0]);
        assert_eq!(snap.submitted, 2);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.expired, 1);
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.queue_depth, 3);
        assert!((snap.cache_hit_rate() - 0.5).abs() < 1e-12);
        assert!((snap.mean_batch_size() - 5.0).abs() < 1e-12);
        assert!(snap.qps > 0.0);
        let text = snap.to_string();
        assert!(text.contains("cache hit rate"), "{text}");
    }

    #[test]
    fn percentiles_track_magnitude() {
        let s = ServiceStats::default();
        // 90 fast requests at ~1 ms, 10 slow at ~500 ms.
        for _ in 0..90 {
            s.record_completed(Duration::from_millis(1));
        }
        for _ in 0..10 {
            s.record_completed(Duration::from_millis(500));
        }
        let snap = s.snapshot(0, EngineCounters::default(), vec![0]);
        assert!(snap.p50_ms < 4.0, "p50 {}", snap.p50_ms);
        assert!(snap.p99_ms > 100.0, "p99 {}", snap.p99_ms);
        assert!(snap.p50_ms <= snap.p90_ms && snap.p90_ms <= snap.p99_ms);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let s = ServiceStats::default();
        let snap = s.snapshot(0, EngineCounters::default(), vec![0]);
        assert_eq!(snap.p50_ms, 0.0);
        assert_eq!(snap.cache_hit_rate(), 0.0);
        assert_eq!(snap.mean_batch_size(), 0.0);
    }

    /// The regression the windowed rate fixes: an idle stretch between
    /// two snapshots must not drag the reported QPS toward zero, and
    /// work after the idle period is rated against the recent window
    /// only.
    #[test]
    fn qps_is_windowed_not_lifetime() {
        let s = ServiceStats::default();
        for _ in 0..50 {
            s.record_completed(Duration::from_micros(100));
        }
        let first = s.snapshot(0, EngineCounters::default(), vec![0]);
        assert!(first.qps > 0.0);
        // Idle period, then one snapshot: zero completions in window.
        std::thread::sleep(Duration::from_millis(30));
        let idle = s.snapshot(0, EngineCounters::default(), vec![0]);
        assert_eq!(idle.qps, 0.0, "no completions since last snapshot");
        // A burst right after the idle window rates against the short
        // recent window, not lifetime uptime: 50 completions within a
        // few ms must report far more than the lifetime average a
        // 30 ms idle stretch would produce (≤ ~1650/s here).
        for _ in 0..50 {
            s.record_completed(Duration::from_micros(100));
        }
        let burst = s.snapshot(0, EngineCounters::default(), vec![0]);
        let lifetime = burst.completed as f64 / burst.uptime.as_secs_f64();
        assert!(
            burst.qps > lifetime,
            "windowed {} should beat lifetime {}",
            burst.qps,
            lifetime
        );
        // Display mentions per-shard candidates only when sharded.
        let sharded = s.snapshot(0, EngineCounters::default(), vec![3, 4]);
        assert!(sharded.to_string().contains("shard candidates [3, 4]"));
    }
}
