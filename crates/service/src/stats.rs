//! Service-level counters and latency percentiles.
//!
//! All counters are lock-free atomics updated by workers and read by
//! anyone; latency quantiles come from a fixed log-scale histogram
//! (power-of-two microsecond buckets), so recording is wait-free and
//! a snapshot costs one pass over 40 buckets.

use atsq_core::EngineCounters;
use atsq_obs::STAGES;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

const BUCKETS: usize = 40; // 2^39 µs ≈ 6.4 days — plenty of headroom

/// Shared mutable counters; cheap to update from any worker.
#[derive(Debug)]
pub struct ServiceStats {
    started: Instant,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    expired: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    coalesced: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    /// Histogram of end-to-end (enqueue → reply) latency in µs.
    latency_us: [AtomicU64; BUCKETS],
    /// Sum of completed-request latencies in µs (feeds the Prometheus
    /// histogram's `_sum` sample).
    latency_sum_us: AtomicU64,
    /// Accumulated per-stage nanoseconds across traced requests,
    /// indexed by [`atsq_obs::Stage`].
    stage_ns: [AtomicU64; STAGES],
    /// Accumulated response-serialisation nanoseconds (server-side
    /// encode, outside the per-request latency window).
    serialize_ns: AtomicU64,
    /// Responses whose serialisation was timed.
    serialize_count: AtomicU64,
    /// QPS window state: `(uptime µs, completion count)` at the last
    /// *consumed* snapshot plus the rate it reported — behind one
    /// mutex so concurrent snapshot takers cannot pair one caller's
    /// time window with another's completion window. Snapshots are a
    /// cold path; the hot-path counters stay lock-free.
    window: parking_lot::Mutex<QpsWindow>,
}

/// See [`ServiceStats::snapshot`]: the window only advances once it is
/// at least [`MIN_QPS_WINDOW_US`] long; shorter gaps report
/// `last_rate` unchanged.
#[derive(Debug, Clone, Copy, Default)]
struct QpsWindow {
    start_us: u64,
    completed_at_start: u64,
    last_rate: f64,
}

/// Minimum window length a QPS sample may be computed over. Dividing a
/// handful of completions by the microseconds between two back-to-back
/// `stats` calls would report absurd rate spikes; below this floor the
/// previous rate is carried and the window keeps accumulating.
const MIN_QPS_WINDOW_US: u64 = 10_000;

impl Default for ServiceStats {
    fn default() -> Self {
        let stats = ServiceStats {
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            latency_us: std::array::from_fn(|_| AtomicU64::new(0)),
            latency_sum_us: AtomicU64::new(0),
            stage_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            serialize_ns: AtomicU64::new(0),
            serialize_count: AtomicU64::new(0),
            window: parking_lot::Mutex::new(QpsWindow::default()),
        };
        stats.window.set_name("service.stats.qps_window");
        stats
    }
}

impl ServiceStats {
    /// One request admitted to the queue.
    pub fn record_submitted(&self) {
        // ordering: Relaxed — independent monotone tally; snapshots
        // tolerate a skewed cut (they clamp derived values).
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// One request refused at admission (queue full).
    pub fn record_rejected(&self) {
        // ordering: Relaxed — independent monotone tally.
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// One request whose deadline passed before execution.
    pub fn record_expired(&self) {
        // ordering: Relaxed — independent monotone tally.
        self.expired.fetch_add(1, Ordering::Relaxed);
    }

    /// One request answered from the result cache.
    pub fn record_cache_hit(&self) {
        // ordering: Relaxed — independent monotone tally.
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// One request that missed the cache and ran on the engine.
    pub fn record_cache_miss(&self) {
        // ordering: Relaxed — independent monotone tally.
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// One request served by coalescing onto an identical in-batch
    /// request (no engine work, no LRU involvement).
    pub fn record_coalesced(&self) {
        // ordering: Relaxed — independent monotone tally.
        self.coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// One request whose execution panicked (reported, not fatal).
    pub fn record_failed(&self) {
        // ordering: Relaxed — independent monotone tally.
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// One batch of `n` requests drained by a worker.
    pub fn record_batch(&self, n: usize) {
        // ordering: Relaxed — independent monotone tallies; the
        // batches/batched_requests pair is only used for a mean.
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// One request completed with the given enqueue→reply latency.
    ///
    /// Every latency lands in a bucket: sub-microsecond values clamp
    /// into the first bucket, and durations beyond the top bucket
    /// (2^39 µs ≈ 6.4 days, which a u128→u64 conversion could
    /// otherwise wrap) clamp into the last — nothing panics, nothing
    /// vanishes from the histogram.
    pub fn record_completed(&self, latency: Duration) {
        // ordering: Relaxed — monotone tallies; the completion count,
        // histogram bucket and latency sum are each meaningful alone,
        // and snapshot percentiles tolerate a skewed cut.
        self.completed.fetch_add(1, Ordering::Relaxed);
        let us = u64::try_from(latency.as_micros())
            .unwrap_or(u64::MAX)
            .max(1);
        let bucket = (63 - us.leading_zeros() as usize).min(BUCKETS - 1);
        // ordering: Relaxed — as above.
        self.latency_us[bucket].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Folds one traced request's per-stage nanoseconds into the
    /// service-wide stage aggregates.
    pub fn record_stages(&self, stage_ns: &[u64; STAGES]) {
        for (total, &ns) in self.stage_ns.iter().zip(stage_ns) {
            if ns > 0 {
                // ordering: Relaxed — independent monotone tally per
                // stage; no memory is published through it.
                total.fetch_add(ns, Ordering::Relaxed);
            }
        }
    }

    /// Records time spent serialising one response on the wire path.
    pub fn record_serialize(&self, ns: u64) {
        // ordering: Relaxed — monotone tallies read only for a mean;
        // a skewed ns/count cut shifts the mean negligibly.
        self.serialize_ns.fetch_add(ns, Ordering::Relaxed);
        self.serialize_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Lower bound (µs) of the histogram bucket containing the current
    /// p99 latency, or 0 before any completion. The slow-query log uses
    /// this as its always-sample-the-tail floor: a request at or above
    /// it is recorded even when the configured threshold is higher.
    pub fn p99_floor_us(&self) -> u64 {
        let mut total = 0u64;
        // coherence: the bucket loads are not a point-in-time cut; a
        // completion landing mid-read shifts the floor by at most one
        // bucket, which the advisory tail-sampling policy tolerates.
        // ordering: Relaxed — see the coherence note above.
        let hist: [u64; BUCKETS] =
            std::array::from_fn(|i| self.latency_us[i].load(Ordering::Relaxed));
        for count in hist {
            total += count;
        }
        if total == 0 {
            return 0;
        }
        let target = nearest_rank(total, 0.99);
        let mut seen = 0u64;
        for (i, &count) in hist.iter().enumerate() {
            seen += count;
            if seen >= target {
                return 1u64 << i;
            }
        }
        unreachable!("target within total");
    }

    /// Consistent-enough snapshot of every counter (individual loads
    /// are atomic; the set is not, which is fine for monitoring).
    ///
    /// The reported `qps` is **windowed**: completions since the
    /// previous *consumed* snapshot divided by the time since it (the
    /// first window starts at service start). A lifetime average would
    /// be permanently deflated by any idle period. The window is only
    /// consumed once it is at least 10 ms long; two back-to-back stats
    /// calls therefore repeat the previous rate instead of dividing a
    /// few completions by a microsecond-scale gap and reporting an
    /// absurd spike, and the accumulating window still counts the
    /// burst when it is next consumed. Concurrent snapshot takers
    /// share one window, so a given consumer sees the rate since
    /// *someone* last looked — the usual scrape model.
    pub fn snapshot(
        &self,
        queue_depth: usize,
        engine: EngineCounters,
        shard_candidates: Vec<u64>,
    ) -> StatsSnapshot {
        // coherence: the snapshot's loads are not a point-in-time cut
        // across counters (documented above) — each value is exact on
        // its own and the derived figures clamp; only the QPS window
        // state below needs real coherence, and the mutex provides it.
        // ordering: Relaxed throughout — see the coherence note.
        let hist: Vec<u64> = self
            .latency_us
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        // The completion count and clock are read *inside* the lock:
        // read outside, a descheduled taker could pair its stale count
        // with a fresher taker's window and corrupt the rate state —
        // the exact mispairing the shared-window mutex exists to
        // prevent.
        let (completed, uptime, qps) = {
            let mut w = self.window.lock();
            // ordering: Relaxed — the window mutex orders takers
            // against each other; the count itself is a monotone
            // tally whose exact cut point is immaterial.
            let completed = self.completed.load(Ordering::Relaxed);
            let uptime = self.started.elapsed();
            let now_us = uptime.as_micros() as u64;
            let window_us = now_us.saturating_sub(w.start_us);
            let qps = if window_us < MIN_QPS_WINDOW_US {
                w.last_rate // window too short to rate; keep accumulating
            } else {
                let delta = completed.saturating_sub(w.completed_at_start);
                let rate = delta as f64 / (window_us as f64 / 1e6);
                *w = QpsWindow {
                    start_us: now_us,
                    completed_at_start: completed,
                    last_rate: rate,
                };
                rate
            };
            (completed, uptime, qps)
        };
        // ordering: Relaxed — monotone tallies; the inflight figure
        // below saturates because these are not a consistent cut.
        let submitted = self.submitted.load(Ordering::Relaxed);
        let expired = self.expired.load(Ordering::Relaxed);
        let failed = self.failed.load(Ordering::Relaxed);
        // Every admitted request terminates in exactly one of
        // completed / expired / failed, so the difference is the
        // population currently queued or executing. Saturating: the
        // relaxed loads are not a consistent cut.
        let inflight = submitted
            .saturating_sub(completed)
            .saturating_sub(expired)
            .saturating_sub(failed);
        // ordering: Relaxed for every load below — monotone tallies,
        // advisory monitoring cut (see the coherence note above).
        StatsSnapshot {
            uptime,
            submitted,
            completed,
            rejected: self.rejected.load(Ordering::Relaxed),
            expired,
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            failed,
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            qps,
            p50_ms: percentile_ms(&hist, 0.50),
            p90_ms: percentile_ms(&hist, 0.90),
            p99_ms: percentile_ms(&hist, 0.99),
            queue_depth,
            inflight,
            latency_sum_us: self.latency_sum_us.load(Ordering::Relaxed),
            latency_buckets: hist,
            stage_ns: std::array::from_fn(|i| self.stage_ns[i].load(Ordering::Relaxed)),
            serialize_ns: self.serialize_ns.load(Ordering::Relaxed),
            serialize_count: self.serialize_count.load(Ordering::Relaxed),
            engine,
            shard_candidates,
        }
    }
}

/// The one percentile convention this crate uses: **nearest rank**,
/// `rank = ⌈p·n⌉` clamped into `[1, n]`. Both the server-side
/// histogram percentiles ([`percentile_ms`]) and the load generator's
/// client-side sample percentiles ([`percentile_sorted`]) apply this
/// rule, so the two sides of a measurement report comparable numbers.
fn nearest_rank(total: u64, p: f64) -> u64 {
    (((total as f64) * p).ceil() as u64).clamp(1, total)
}

/// Nearest-rank percentile of an ascending-sorted sample (`0.0` for an
/// empty one). Sort inputs with [`f64::total_cmp`] — it is total over
/// NaN and infinities, unlike a `partial_cmp` fallback that silently
/// treats NaN as equal to everything and can leave the slice
/// mis-sorted.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[nearest_rank(sorted.len() as u64, p) as usize - 1]
}

/// Approximate percentile from the log-bucket histogram, reported as
/// the geometric midpoint of the containing bucket, in milliseconds.
/// Same nearest-rank rule as [`percentile_sorted`].
fn percentile_ms(hist: &[u64], p: f64) -> f64 {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let target = nearest_rank(total, p);
    let mut seen = 0u64;
    for (i, &count) in hist.iter().enumerate() {
        seen += count;
        if seen >= target {
            // Bucket i covers [2^i, 2^(i+1)) µs.
            let lo = (1u64 << i) as f64;
            return lo * std::f64::consts::SQRT_2 / 1e3;
        }
    }
    unreachable!("target within total");
}

/// Point-in-time view of the service counters.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Time since the service started.
    pub uptime: Duration,
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// Requests answered (cache hits included, expirations excluded).
    pub completed: u64,
    /// Requests refused at admission (queue full).
    pub rejected: u64,
    /// Requests whose deadline passed while queued.
    pub expired: u64,
    /// Requests answered from the result cache.
    pub cache_hits: u64,
    /// Requests that ran on the engine.
    pub cache_misses: u64,
    /// Requests coalesced onto an identical in-batch request.
    pub coalesced: u64,
    /// Requests whose execution panicked (answered `Failed`).
    pub failed: u64,
    /// Batches drained by workers.
    pub batches: u64,
    /// Requests across all drained batches.
    pub batched_requests: u64,
    /// Completed requests per second **since the previous snapshot**
    /// (not a lifetime average — idle periods don't deflate it).
    pub qps: f64,
    /// Median enqueue→reply latency (log-bucket approximation).
    pub p50_ms: f64,
    /// 90th-percentile latency.
    pub p90_ms: f64,
    /// 99th-percentile latency.
    pub p99_ms: f64,
    /// Queue depth at snapshot time.
    pub queue_depth: usize,
    /// Admitted requests not yet terminally answered (queued or
    /// executing), derived from the terminal counters.
    pub inflight: u64,
    /// Sum of completed-request latencies in µs.
    pub latency_sum_us: u64,
    /// Raw latency histogram counts; bucket `i` covers
    /// `[2^i, 2^(i+1))` µs.
    pub latency_buckets: Vec<u64>,
    /// Accumulated per-stage nanoseconds across traced requests,
    /// indexed by [`atsq_obs::Stage`].
    pub stage_ns: [u64; STAGES],
    /// Accumulated response-serialisation nanoseconds (wire encode).
    pub serialize_ns: u64,
    /// Responses whose serialisation was timed.
    pub serialize_count: u64,
    /// Work counters of the underlying engine.
    pub engine: EngineCounters,
    /// Candidate counts per shard — one entry per shard for a sharded
    /// engine, a single aggregate entry otherwise.
    pub shard_candidates: Vec<u64>,
}

impl StatsSnapshot {
    /// Cache hits as a fraction of cache-eligible completions.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Mean requests per drained batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "uptime {:.1}s  submitted {}  completed {}  rejected {}  expired {}",
            self.uptime.as_secs_f64(),
            self.submitted,
            self.completed,
            self.rejected,
            self.expired
        )?;
        writeln!(
            f,
            "qps {:.1}  p50 {:.2} ms  p90 {:.2} ms  p99 {:.2} ms  queue {}",
            self.qps, self.p50_ms, self.p90_ms, self.p99_ms, self.queue_depth
        )?;
        write!(
            f,
            "cache hit rate {:.1}%  coalesced {}  failed {}  mean batch {:.1}  distance evals {}",
            self.cache_hit_rate() * 100.0,
            self.coalesced,
            self.failed,
            self.mean_batch_size(),
            self.engine.distance_evals
        )?;
        if self.shard_candidates.len() > 1 {
            let counts: Vec<String> = self.shard_candidates.iter().map(u64::to_string).collect();
            write!(f, "\nshard candidates [{}]", counts.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = ServiceStats::default();
        s.record_submitted();
        s.record_submitted();
        s.record_rejected();
        s.record_expired();
        s.record_cache_hit();
        s.record_cache_miss();
        s.record_batch(5);
        s.record_completed(Duration::from_micros(800));
        // Let the QPS window clear its 10 ms floor so the rate is live.
        std::thread::sleep(Duration::from_millis(12));
        let snap = s.snapshot(3, EngineCounters::default(), vec![0]);
        assert_eq!(snap.submitted, 2);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.expired, 1);
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.queue_depth, 3);
        assert!((snap.cache_hit_rate() - 0.5).abs() < 1e-12);
        assert!((snap.mean_batch_size() - 5.0).abs() < 1e-12);
        assert!(snap.qps > 0.0);
        let text = snap.to_string();
        assert!(text.contains("cache hit rate"), "{text}");
    }

    #[test]
    fn percentiles_track_magnitude() {
        let s = ServiceStats::default();
        // 90 fast requests at ~1 ms, 10 slow at ~500 ms.
        for _ in 0..90 {
            s.record_completed(Duration::from_millis(1));
        }
        for _ in 0..10 {
            s.record_completed(Duration::from_millis(500));
        }
        let snap = s.snapshot(0, EngineCounters::default(), vec![0]);
        assert!(snap.p50_ms < 4.0, "p50 {}", snap.p50_ms);
        assert!(snap.p99_ms > 100.0, "p99 {}", snap.p99_ms);
        assert!(snap.p50_ms <= snap.p90_ms && snap.p90_ms <= snap.p99_ms);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let s = ServiceStats::default();
        let snap = s.snapshot(0, EngineCounters::default(), vec![0]);
        assert_eq!(snap.p50_ms, 0.0);
        assert_eq!(snap.cache_hit_rate(), 0.0);
        assert_eq!(snap.mean_batch_size(), 0.0);
    }

    /// The regression the windowed rate fixes: an idle stretch between
    /// two snapshots must not drag the reported QPS toward zero, and
    /// work after the idle period is rated against the recent window
    /// only.
    #[test]
    fn qps_is_windowed_not_lifetime() {
        let s = ServiceStats::default();
        for _ in 0..50 {
            s.record_completed(Duration::from_micros(100));
        }
        std::thread::sleep(Duration::from_millis(12));
        let first = s.snapshot(0, EngineCounters::default(), vec![0]);
        assert!(first.qps > 0.0);
        // Idle period, then one snapshot: zero completions in window.
        std::thread::sleep(Duration::from_millis(30));
        let idle = s.snapshot(0, EngineCounters::default(), vec![0]);
        assert_eq!(idle.qps, 0.0, "no completions since last snapshot");
        // A burst right after the idle window rates against the short
        // recent window, not lifetime uptime: 50 completions within
        // ~12 ms must report far more than the lifetime average a
        // 40+ ms idle stretch would produce.
        for _ in 0..50 {
            s.record_completed(Duration::from_micros(100));
        }
        std::thread::sleep(Duration::from_millis(12));
        let burst = s.snapshot(0, EngineCounters::default(), vec![0]);
        let lifetime = burst.completed as f64 / burst.uptime.as_secs_f64();
        assert!(
            burst.qps > lifetime,
            "windowed {} should beat lifetime {}",
            burst.qps,
            lifetime
        );
        // Display mentions per-shard candidates only when sharded.
        let sharded = s.snapshot(0, EngineCounters::default(), vec![3, 4]);
        assert!(sharded.to_string().contains("shard candidates [3, 4]"));
    }

    /// The regression the minimum-window guard fixes: two back-to-back
    /// stats calls must not divide a burst of completions by a
    /// microsecond-scale gap and report an absurd rate spike. The
    /// sub-floor call repeats the previous rate; the burst is still
    /// counted once the window is long enough to consume.
    #[test]
    fn back_to_back_snapshots_do_not_spike_qps() {
        let s = ServiceStats::default();
        for _ in 0..20 {
            s.record_completed(Duration::from_micros(100));
        }
        std::thread::sleep(Duration::from_millis(12));
        let first = s.snapshot(0, EngineCounters::default(), vec![0]);
        assert!(first.qps > 0.0 && first.qps < 20_000.0, "{}", first.qps);
        // Burst + immediate snapshot: the window is normally only
        // microseconds long here, so the guard carries the previous
        // rate instead of reporting 1000 completions over it (tens of
        // millions of QPS). Under a CI scheduler stall the window can
        // legitimately clear the 10 ms floor and recompute — so the
        // hard bound is the property asserted: the reported rate can
        // never exceed completions divided by the window floor.
        for _ in 0..1000 {
            s.record_completed(Duration::from_micros(100));
        }
        let spike = s.snapshot(0, EngineCounters::default(), vec![0]);
        let ceiling = 1020.0 / 0.010;
        assert!(
            spike.qps <= ceiling,
            "guarded rate {} must stay below the window-floor ceiling {ceiling}",
            spike.qps
        );
        // Once the window clears the floor, the burst is rated over a
        // real window — large, but still bounded by the same ceiling.
        std::thread::sleep(Duration::from_millis(12));
        let settled = s.snapshot(0, EngineCounters::default(), vec![0]);
        if spike.qps == first.qps {
            // The spike call carried (no stall): the accumulating
            // window kept the burst and it must show up now.
            assert!(settled.qps > first.qps, "burst must show up");
        }
        assert!(
            settled.qps <= ceiling,
            "rate bounded by the window floor, got {}",
            settled.qps
        );
    }

    /// Bucket-edge regressions: sub-microsecond latencies land in the
    /// first bucket, and latencies beyond the top bucket (including
    /// durations whose microsecond count exceeds u64) land in the last
    /// bucket — counted, not panicking, not vanishing.
    #[test]
    fn latency_bucket_edges_clamp() {
        let s = ServiceStats::default();
        s.record_completed(Duration::ZERO);
        s.record_completed(Duration::from_nanos(1));
        s.record_completed(Duration::from_nanos(999));
        let snap = s.snapshot(0, EngineCounters::default(), vec![0]);
        assert_eq!(snap.completed, 3);
        // All three sit in bucket 0: its geometric midpoint is √2 µs.
        let first_bucket_ms = std::f64::consts::SQRT_2 / 1e3;
        assert!(
            (snap.p50_ms - first_bucket_ms).abs() < 1e-12,
            "{}",
            snap.p50_ms
        );
        assert!((snap.p99_ms - first_bucket_ms).abs() < 1e-12);

        // Far beyond the top bucket: 2^39 µs ≈ 6.4 days < 10^6 days;
        // Duration::MAX microseconds does not even fit u64.
        let s = ServiceStats::default();
        s.record_completed(Duration::from_secs(60 * 60 * 24 * 365)); // a year
        s.record_completed(Duration::MAX);
        let snap = s.snapshot(0, EngineCounters::default(), vec![0]);
        assert_eq!(snap.completed, 2);
        let last_bucket_ms = ((1u64 << (BUCKETS - 1)) as f64) * std::f64::consts::SQRT_2 / 1e3;
        assert!(
            (snap.p50_ms - last_bucket_ms).abs() < 1e-3,
            "{}",
            snap.p50_ms
        );
        assert!((snap.p99_ms - last_bucket_ms).abs() < 1e-3);
    }

    /// The shared nearest-rank convention, on the sample-percentile
    /// side: rank ⌈p·n⌉, clamped, NaN-safe ordering left to the
    /// caller's `total_cmp` sort.
    #[test]
    fn percentile_sorted_uses_nearest_rank() {
        assert_eq!(percentile_sorted(&[], 0.5), 0.0);
        let one = [42.0];
        assert_eq!(percentile_sorted(&one, 0.0), 42.0);
        assert_eq!(percentile_sorted(&one, 1.0), 42.0);
        let v: Vec<f64> = (1..=10).map(f64::from).collect();
        // ⌈0.5·10⌉ = 5 → 5.0 (nearest-rank, not linear interpolation).
        assert_eq!(percentile_sorted(&v, 0.50), 5.0);
        // ⌈0.99·10⌉ = 10 → 10.0; ⌈0.90·10⌉ = 9 → 9.0.
        assert_eq!(percentile_sorted(&v, 0.99), 10.0);
        assert_eq!(percentile_sorted(&v, 0.90), 9.0);
        // ⌈0.91·10⌉ = 10: the old round() rule would have picked
        // index round(9·0.91)=8 → 9.0 here; nearest-rank says 10.0.
        assert_eq!(percentile_sorted(&v, 0.91), 10.0);
        // A total_cmp sort orders NaN last and the percentile stays
        // finite for ranks below it.
        let mut with_nan = vec![3.0, f64::NAN, 1.0, 2.0];
        with_nan.sort_unstable_by(f64::total_cmp);
        assert_eq!(percentile_sorted(&with_nan, 0.50), 2.0);
        assert_eq!(with_nan[0], 1.0);
    }
}
