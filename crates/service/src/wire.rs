//! Wire mapping between [`Request`]/[`Response`] and the NDJSON
//! protocol spoken by [`crate::server`].
//!
//! One request per line, one response line per request:
//!
//! ```json
//! {"op":"atsq","k":5,"stops":[{"x":12.0,"y":7.5,"acts":["coffee"]}]}
//! {"status":"ok","cached":false,"results":[{"trajectory":3,"distance":1.2}]}
//! ```
//!
//! * `op` — `atsq` | `oatsq` (with `k`), `atsq_range` | `oatsq_range`
//!   (with `tau`), `stats`, `metrics`, `slowlog`, `ping`, or the
//!   multi-tenant admin ops `cities`, `city_load`, `city_unload`
//!   (the latter two with a `city` member).
//! * `city` (optional on query ops) — the named dataset to query in a
//!   multi-city server. Absent means the default city, so single-city
//!   clients are unaffected. The server resolves the city *before*
//!   decoding stops: activity names bind to that city's vocabulary.
//! * Stops carry activities as names (`acts`, resolved against the
//!   dataset vocabulary) and/or raw ids (`act_ids`).
//! * `deadline_ms` (optional) — per-request deadline.
//! * Response `status` — `ok`, `expired`, `rejected`, or `error`.
//! * Query responses echo the service-assigned `request_id`, the
//!   handle that joins a wire reply to its slow-log entry.
//! * `metrics` answers with the Prometheus exposition text in a
//!   `metrics` field; `slowlog` answers with an `entries` array of
//!   per-request traces (stage breakdown in ms, engine counters).

use crate::json::{obj, parse, Value};
use crate::request::{Request, Response};
use crate::service::SubmitError;
use crate::stats::StatsSnapshot;
use atsq_obs::{SlowEntry, Stage};
use atsq_types::{
    ActivityId, ActivitySet, Dataset, Point, Query, QueryPoint, QueryResult, TrajectoryId,
};
use std::time::Duration;

/// A malformed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for WireError {}

fn bad(msg: impl Into<String>) -> WireError {
    WireError(msg.into())
}

/// One decoded client line.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientMessage {
    /// A query to submit, with its optional deadline.
    Query(Request, Option<Duration>),
    /// Stats snapshot request.
    Stats,
    /// Prometheus metrics-page request.
    Metrics,
    /// Slow-query log request.
    Slowlog,
    /// Liveness probe.
    Ping,
    /// Per-city registry listing (`{"op":"cities"}`).
    Cities,
    /// Warm a city's engine ahead of traffic.
    CityLoad(String),
    /// Release a city's resident memory.
    CityUnload(String),
}

/// A parsed line whose query body has *not* yet been decoded.
///
/// Query decoding needs a dataset (activity names bind to a
/// vocabulary), and in a multi-city server the dataset depends on the
/// `city` member of the very line being decoded. The envelope splits
/// the two steps: the server first resolves `city` to a lease, then
/// finishes decoding against that city's dataset with
/// [`decode_query_request`].
#[derive(Debug, Clone, PartialEq)]
pub enum Envelope {
    /// A query op: the target city (if named) plus the retained JSON
    /// to finish decoding once the city's dataset is resolved.
    Query {
        /// `city` member, when present.
        city: Option<String>,
        /// The parsed line, for [`decode_query_request`].
        value: Value,
    },
    /// A control op that needs no dataset.
    Control(ClientMessage),
}

/// Parses one request line far enough to route it: control ops decode
/// completely; query ops yield an [`Envelope::Query`] naming the
/// target city so the caller can resolve a dataset before finishing
/// with [`decode_query_request`].
pub fn decode_envelope(line: &str) -> Result<Envelope, WireError> {
    let value = parse(line).map_err(|e| bad(e.to_string()))?;
    let op = value
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| bad("missing `op`"))?;
    let city_member = |value: &Value| -> Result<String, WireError> {
        value
            .get("city")
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| bad(format!("`{op}` needs a `city` string")))
    };
    match op {
        "stats" => Ok(Envelope::Control(ClientMessage::Stats)),
        "metrics" => Ok(Envelope::Control(ClientMessage::Metrics)),
        "slowlog" => Ok(Envelope::Control(ClientMessage::Slowlog)),
        "ping" => Ok(Envelope::Control(ClientMessage::Ping)),
        "cities" => Ok(Envelope::Control(ClientMessage::Cities)),
        "city_load" => Ok(Envelope::Control(ClientMessage::CityLoad(city_member(
            &value,
        )?))),
        "city_unload" => Ok(Envelope::Control(ClientMessage::CityUnload(city_member(
            &value,
        )?))),
        "atsq" | "oatsq" | "atsq_range" | "oatsq_range" => {
            let city = match value.get("city") {
                None | Some(Value::Null) => None,
                Some(v) => Some(
                    v.as_str()
                        .ok_or_else(|| bad("`city` must be a string"))?
                        .to_owned(),
                ),
            };
            Ok(Envelope::Query { city, value })
        }
        other => Err(bad(format!("unknown op `{other}`"))),
    }
}

/// Finishes decoding an [`Envelope::Query`]'s retained JSON against
/// the resolved city's dataset vocabulary.
pub fn decode_query_request(
    value: &Value,
    dataset: &Dataset,
) -> Result<(Request, Option<Duration>), WireError> {
    let op = value
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| bad("missing `op`"))?;
    let query = decode_query(value, dataset)?;
    let deadline = match value.get("deadline_ms") {
        None | Some(Value::Null) => None,
        Some(v) => Some(Duration::from_millis(
            v.as_usize().ok_or_else(|| bad("bad `deadline_ms`"))? as u64,
        )),
    };
    let request = match op {
        "atsq" | "oatsq" => {
            let k = match value.get("k") {
                None => 9,
                Some(v) => v.as_usize().ok_or_else(|| bad("bad `k`"))?,
            };
            if op == "atsq" {
                Request::Atsq { query, k }
            } else {
                Request::Oatsq { query, k }
            }
        }
        "atsq_range" | "oatsq_range" => {
            let tau = value
                .get("tau")
                .and_then(Value::as_f64)
                .ok_or_else(|| bad("range ops need a numeric `tau`"))?;
            if op == "atsq_range" {
                Request::AtsqRange { query, tau }
            } else {
                Request::OatsqRange { query, tau }
            }
        }
        other => return Err(bad(format!("unknown op `{other}`"))),
    };
    Ok((request, deadline))
}

/// Decodes one request line against a single dataset vocabulary.
///
/// Single-dataset convenience: any `city` member is ignored. Servers
/// hosting multiple cities use [`decode_envelope`] +
/// [`decode_query_request`] so the vocabulary matches the target city.
pub fn decode_client_line(line: &str, dataset: &Dataset) -> Result<ClientMessage, WireError> {
    match decode_envelope(line)? {
        Envelope::Control(message) => Ok(message),
        Envelope::Query { value, .. } => {
            let (request, deadline) = decode_query_request(&value, dataset)?;
            Ok(ClientMessage::Query(request, deadline))
        }
    }
}

fn decode_query(value: &Value, dataset: &Dataset) -> Result<Query, WireError> {
    let stops = value
        .get("stops")
        .and_then(Value::as_arr)
        .ok_or_else(|| bad("missing `stops` array"))?;
    let mut points = Vec::with_capacity(stops.len());
    for stop in stops {
        let x = stop
            .get("x")
            .and_then(Value::as_f64)
            .ok_or_else(|| bad("stop needs numeric `x`"))?;
        let y = stop
            .get("y")
            .and_then(Value::as_f64)
            .ok_or_else(|| bad("stop needs numeric `y`"))?;
        let mut ids: Vec<ActivityId> = Vec::new();
        if let Some(names) = stop.get("acts").and_then(Value::as_arr) {
            for name in names {
                let name = name.as_str().ok_or_else(|| bad("`acts` must be strings"))?;
                let id = dataset
                    .vocabulary()
                    .get(name)
                    .ok_or_else(|| bad(format!("unknown activity `{name}`")))?;
                ids.push(id);
            }
        }
        if let Some(raw) = stop.get("act_ids").and_then(Value::as_arr) {
            for v in raw {
                let id = v
                    .as_usize()
                    .ok_or_else(|| bad("`act_ids` must be integers"))?;
                ids.push(ActivityId(id as u32));
            }
        }
        let activities = ActivitySet::from_ids(ids);
        // The matching kernels cap per-point activity sets (and panic
        // beyond the cap); refuse here so it is a protocol error, not
        // a worker panic.
        let max = atsq_core::matching::point_match::QueryMask::MAX_ACTIVITIES;
        if activities.len() > max {
            return Err(bad(format!(
                "stop requests {} activities; at most {max} supported",
                activities.len()
            )));
        }
        points.push(QueryPoint::new(Point::new(x, y), activities));
    }
    Query::new(points).map_err(|e| bad(e.to_string()))
}

/// Encodes a query for the client side of the protocol.
pub fn encode_request(request: &Request, deadline: Option<Duration>) -> Value {
    encode_request_for_city(request, deadline, None)
}

/// Encodes a query addressed to a named city. `None` omits the `city`
/// member entirely (the default city), keeping single-city servers'
/// wire traffic byte-identical to the pre-tenant protocol.
pub fn encode_request_for_city(
    request: &Request,
    deadline: Option<Duration>,
    city: Option<&str>,
) -> Value {
    let (op, query) = (request.op(), request.query());
    let stops: Vec<Value> = query
        .points
        .iter()
        .map(|p| {
            obj(vec![
                ("x", Value::Num(p.loc.x)),
                ("y", Value::Num(p.loc.y)),
                (
                    "act_ids",
                    Value::Arr(
                        p.activities
                            .iter()
                            .map(|a| Value::Num(a.0 as f64))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let mut members = vec![("op", Value::Str(op.into())), ("stops", Value::Arr(stops))];
    if let Some(city) = city {
        members.push(("city", Value::Str(city.into())));
    }
    match request {
        Request::Atsq { k, .. } | Request::Oatsq { k, .. } => {
            members.push(("k", Value::Num(*k as f64)));
        }
        Request::AtsqRange { tau, .. } | Request::OatsqRange { tau, .. } => {
            members.push(("tau", Value::Num(*tau)));
        }
    }
    if let Some(d) = deadline {
        members.push(("deadline_ms", Value::Num(d.as_millis() as f64)));
    }
    obj(members)
}

/// Encodes a service response. `request_id`, when given, is echoed as
/// a `request_id` member — the client's handle for joining a reply to
/// the server's slow-query log and latency records.
pub fn encode_response(response: &Response, request_id: Option<u64>) -> Value {
    let mut members: Vec<(&str, Value)> = Vec::new();
    if let Some(id) = request_id {
        members.push(("request_id", Value::Num(id as f64)));
    }
    match response {
        Response::Ok { results, cached } => {
            members.push(("status", Value::Str("ok".into())));
            members.push(("cached", Value::Bool(*cached)));
            members.push((
                "results",
                Value::Arr(
                    results
                        .iter()
                        .map(|r| {
                            obj(vec![
                                ("trajectory", Value::Num(r.trajectory.0 as f64)),
                                ("distance", Value::Num(r.distance)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        Response::Expired => members.push(("status", Value::Str("expired".into()))),
        Response::Failed { error } => {
            members.push(("status", Value::Str("error".into())));
            members.push(("error", Value::Str(error.clone())));
        }
    }
    obj(members)
}

/// Encodes an admission failure. Per-city overload is `rejected` like
/// a full queue (the client may retry); tenant resolution failures
/// (unknown city, failed load) are `error` with the structured message.
pub fn encode_submit_error(error: &SubmitError) -> Value {
    let status = match error {
        SubmitError::QueueFull | SubmitError::CityOverloaded(_) => "rejected",
        SubmitError::Stopped | SubmitError::City(_) => "error",
    };
    obj(vec![
        ("status", Value::Str(status.into())),
        ("error", Value::Str(error.to_string())),
    ])
}

/// Encodes a protocol error.
pub fn encode_error(message: &str) -> Value {
    obj(vec![
        ("status", Value::Str("error".into())),
        ("error", Value::Str(message.into())),
    ])
}

/// Encodes the city-registry listing as a wire reply: one entry per
/// registered city with its lifecycle state, memory footprint and
/// tenancy counters.
pub fn encode_cities(cities: &[atsq_tenant::CityInfo]) -> Value {
    let encoded: Vec<Value> = cities
        .iter()
        .map(|c| {
            let mut members = vec![
                ("city", Value::Str(c.city.as_str().into())),
                ("state", Value::Str(c.state.name().into())),
                ("pinned", Value::Bool(c.pinned)),
                ("resident_bytes", Value::Num(c.resident_bytes as f64)),
                ("inflight", Value::Num(c.inflight as f64)),
                ("queries", Value::Num(c.queries as f64)),
                ("loads", Value::Num(c.loads as f64)),
                ("evictions", Value::Num(c.evictions as f64)),
                ("load_ms_total", Value::Num(c.load_ms_total)),
                ("loaded_from_snapshot", Value::Bool(c.loaded_from_snapshot)),
                ("candidates", Value::Num(c.counters.candidates as f64)),
            ];
            if let Some(err) = &c.last_error {
                members.push(("last_error", Value::Str(err.clone())));
            }
            obj(members)
        })
        .collect();
    obj(vec![
        ("status", Value::Str("ok".into())),
        ("cities", Value::Arr(encoded)),
    ])
}

/// Encodes the acknowledgement for `city_load` / `city_unload`.
/// `cold` is meaningful for loads: true when the op actually built or
/// restored an engine rather than finding one already resident.
pub fn encode_city_ack(city: &str, cold: Option<bool>) -> Value {
    let mut members = vec![
        ("status", Value::Str("ok".into())),
        ("city", Value::Str(city.into())),
    ];
    if let Some(cold) = cold {
        members.push(("cold", Value::Bool(cold)));
    }
    obj(members)
}

/// Encodes a Prometheus metrics page as a wire reply.
pub fn encode_metrics(text: &str) -> Value {
    obj(vec![
        ("status", Value::Str("ok".into())),
        ("metrics", Value::Str(text.into())),
    ])
}

/// Encodes the slow-query log as a wire reply: one entry per recorded
/// request, newest last, with the stage breakdown in milliseconds and
/// the per-query engine counters.
pub fn encode_slowlog(entries: &[SlowEntry]) -> Value {
    let encoded: Vec<Value> = entries
        .iter()
        .map(|e| {
            let r = &e.report;
            let stages = obj(Stage::ALL
                .iter()
                .map(|&s| (s.name(), Value::Num(r.stage_ns[s as usize] as f64 / 1e6)))
                .collect());
            let counters = obj(vec![
                ("candidates", Value::Num(r.counters.candidates as f64)),
                (
                    "distance_evals",
                    Value::Num(r.counters.distance_evals as f64),
                ),
                ("tas_checks", Value::Num(r.counters.tas_checks as f64)),
                (
                    "tas_false_positives",
                    Value::Num(r.counters.tas_false_positives as f64),
                ),
                ("apl_reads", Value::Num(r.counters.apl_reads as f64)),
                ("cold_reads", Value::Num(r.counters.cold_reads as f64)),
            ]);
            obj(vec![
                ("request_id", Value::Num(r.request_id as f64)),
                ("op", Value::Str(r.op.into())),
                ("status", Value::Str(r.status.into())),
                ("cached", Value::Bool(r.cached)),
                ("age_s", Value::Num(e.recorded_at.elapsed().as_secs_f64())),
                ("total_ms", Value::Num(r.total_ns as f64 / 1e6)),
                ("stages", stages),
                ("counters", counters),
                (
                    "shard_busy_ms",
                    Value::Arr(
                        r.shard_busy_ns
                            .iter()
                            .map(|&ns| Value::Num(ns as f64 / 1e6))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    obj(vec![
        ("status", Value::Str("ok".into())),
        ("entries", Value::Arr(encoded)),
    ])
}

/// Encodes a stats snapshot.
pub fn encode_stats(snap: &StatsSnapshot) -> Value {
    obj(vec![
        ("status", Value::Str("ok".into())),
        ("uptime_s", Value::Num(snap.uptime.as_secs_f64())),
        ("submitted", Value::Num(snap.submitted as f64)),
        ("completed", Value::Num(snap.completed as f64)),
        ("rejected", Value::Num(snap.rejected as f64)),
        ("expired", Value::Num(snap.expired as f64)),
        ("cache_hits", Value::Num(snap.cache_hits as f64)),
        ("cache_misses", Value::Num(snap.cache_misses as f64)),
        ("cache_hit_rate", Value::Num(snap.cache_hit_rate())),
        ("coalesced", Value::Num(snap.coalesced as f64)),
        ("failed", Value::Num(snap.failed as f64)),
        ("mean_batch_size", Value::Num(snap.mean_batch_size())),
        ("qps", Value::Num(snap.qps)),
        ("p50_ms", Value::Num(snap.p50_ms)),
        ("p90_ms", Value::Num(snap.p90_ms)),
        ("p99_ms", Value::Num(snap.p99_ms)),
        ("queue_depth", Value::Num(snap.queue_depth as f64)),
        (
            "distance_evals",
            Value::Num(snap.engine.distance_evals as f64),
        ),
        (
            "shard_candidates",
            Value::Arr(
                snap.shard_candidates
                    .iter()
                    .map(|&c| Value::Num(c as f64))
                    .collect(),
            ),
        ),
    ])
}

/// The client-side view of one response line.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerReply {
    /// Results, with the server's cached flag.
    Ok {
        /// Ranked results.
        results: Vec<QueryResult>,
        /// Served from the result cache.
        cached: bool,
    },
    /// Deadline expired server-side.
    Expired,
    /// Admission control refused the request.
    Rejected(String),
    /// Protocol or server error.
    Error(String),
}

/// Decodes one server response line (client side).
pub fn decode_server_reply(line: &str) -> Result<ServerReply, WireError> {
    decode_server_reply_full(line).map(|(_, reply)| reply)
}

/// Decodes one server response line along with the echoed
/// `request_id`, when the server attached one.
pub fn decode_server_reply_full(line: &str) -> Result<(Option<u64>, ServerReply), WireError> {
    let value = parse(line).map_err(|e| bad(e.to_string()))?;
    let request_id = value
        .get("request_id")
        .and_then(Value::as_f64)
        .map(|n| n as u64);
    let status = value
        .get("status")
        .and_then(Value::as_str)
        .ok_or_else(|| bad("missing `status`"))?;
    let reply = match status {
        "ok" => {
            let results = match value.get("results") {
                None => Vec::new(),
                Some(arr) => arr
                    .as_arr()
                    .ok_or_else(|| bad("`results` must be an array"))?
                    .iter()
                    .map(|r| {
                        let trajectory = r
                            .get("trajectory")
                            .and_then(Value::as_usize)
                            .ok_or_else(|| bad("result needs `trajectory`"))?;
                        let distance = r
                            .get("distance")
                            .and_then(Value::as_f64)
                            .ok_or_else(|| bad("result needs `distance`"))?;
                        Ok(QueryResult::new(TrajectoryId(trajectory as u32), distance))
                    })
                    .collect::<Result<_, WireError>>()?,
            };
            let cached = value
                .get("cached")
                .and_then(Value::as_bool)
                .unwrap_or(false);
            ServerReply::Ok { results, cached }
        }
        "expired" => ServerReply::Expired,
        "rejected" => ServerReply::Rejected(
            value
                .get("error")
                .and_then(Value::as_str)
                .unwrap_or("rejected")
                .to_owned(),
        ),
        "error" => ServerReply::Error(
            value
                .get("error")
                .and_then(Value::as_str)
                .unwrap_or("error")
                .to_owned(),
        ),
        other => return Err(bad(format!("unknown status `{other}`"))),
    };
    Ok((request_id, reply))
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsq_datagen::{generate, CityConfig};
    use std::sync::Arc;

    fn dataset() -> Dataset {
        generate(&CityConfig::tiny(2)).unwrap()
    }

    #[test]
    fn request_roundtrips_through_the_wire() {
        let ds = dataset();
        let some_act = ds.trajectories()[0].points[0]
            .activities
            .iter()
            .next()
            .unwrap();
        let query = Query::new(vec![QueryPoint::new(
            Point::new(3.5, -1.25),
            ActivitySet::from_ids([some_act]),
        )])
        .unwrap();
        for request in [
            Request::Atsq {
                query: query.clone(),
                k: 7,
            },
            Request::Oatsq {
                query: query.clone(),
                k: 2,
            },
            Request::AtsqRange {
                query: query.clone(),
                tau: 12.5,
            },
            Request::OatsqRange {
                query: query.clone(),
                tau: 0.5,
            },
        ] {
            let line = encode_request(&request, Some(Duration::from_millis(250))).to_json();
            match decode_client_line(&line, &ds).unwrap() {
                ClientMessage::Query(decoded, deadline) => {
                    assert_eq!(decoded, request);
                    assert_eq!(deadline, Some(Duration::from_millis(250)));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn named_activities_resolve() {
        let ds = dataset();
        let name = ds.vocabulary().name(ActivityId(0)).unwrap().to_owned();
        let line =
            format!(r#"{{"op":"atsq","k":3,"stops":[{{"x":1.0,"y":2.0,"acts":["{name}"]}}]}}"#);
        match decode_client_line(&line, &ds).unwrap() {
            ClientMessage::Query(Request::Atsq { query, k }, None) => {
                assert_eq!(k, 3);
                assert!(query.points[0].activities.contains(ActivityId(0)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn control_messages_decode() {
        let ds = dataset();
        assert_eq!(
            decode_client_line(r#"{"op":"stats"}"#, &ds).unwrap(),
            ClientMessage::Stats
        );
        assert_eq!(
            decode_client_line(r#"{"op":"metrics"}"#, &ds).unwrap(),
            ClientMessage::Metrics
        );
        assert_eq!(
            decode_client_line(r#"{"op":"slowlog"}"#, &ds).unwrap(),
            ClientMessage::Slowlog
        );
        assert_eq!(
            decode_client_line(r#"{"op":"ping"}"#, &ds).unwrap(),
            ClientMessage::Ping
        );
    }

    #[test]
    fn bad_lines_are_rejected() {
        let ds = dataset();
        for bad_line in [
            "not json",
            r#"{"k":3}"#,
            r#"{"op":"warp"}"#,
            r#"{"op":"atsq","stops":[]}"#,
            r#"{"op":"atsq","stops":[{"x":1,"y":2,"acts":["no-such-activity"]}]}"#,
            r#"{"op":"atsq_range","stops":[{"x":1,"y":2,"act_ids":[0]}]}"#,
            r#"{"op":"atsq","k":-2,"stops":[{"x":1,"y":2,"act_ids":[0]}]}"#,
            // 21 activities exceeds the matching kernels' cap; must be
            // a protocol error, not a worker panic.
            r#"{"op":"atsq","k":3,"stops":[{"x":1,"y":2,"act_ids":[0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20]}]}"#,
        ] {
            assert!(decode_client_line(bad_line, &ds).is_err(), "{bad_line}");
        }
    }

    #[test]
    fn city_envelopes_split_routing_from_query_decode() {
        let ds = dataset();
        let query = Query::new(vec![QueryPoint::new(
            Point::new(1.0, 2.0),
            ActivitySet::from_ids([ActivityId(0)]),
        )])
        .unwrap();
        let request = Request::Atsq { query, k: 4 };
        // A city-addressed line surfaces the city before any dataset
        // is needed; the retained value then decodes against it.
        let line = encode_request_for_city(&request, None, Some("tokyo")).to_json();
        match decode_envelope(&line).unwrap() {
            Envelope::Query { city, value } => {
                assert_eq!(city.as_deref(), Some("tokyo"));
                let (decoded, deadline) = decode_query_request(&value, &ds).unwrap();
                assert_eq!(decoded, request);
                assert_eq!(deadline, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        // No city: byte-identical to the pre-tenant wire format.
        let plain = encode_request(&request, None).to_json();
        assert!(!plain.contains("city"), "{plain}");
        match decode_envelope(&plain).unwrap() {
            Envelope::Query { city, .. } => assert_eq!(city, None),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn city_admin_ops_decode() {
        assert_eq!(
            decode_envelope(r#"{"op":"cities"}"#).unwrap(),
            Envelope::Control(ClientMessage::Cities)
        );
        assert_eq!(
            decode_envelope(r#"{"op":"city_load","city":"osaka"}"#).unwrap(),
            Envelope::Control(ClientMessage::CityLoad("osaka".into()))
        );
        assert_eq!(
            decode_envelope(r#"{"op":"city_unload","city":"osaka"}"#).unwrap(),
            Envelope::Control(ClientMessage::CityUnload("osaka".into()))
        );
        // The admin ops require a city string.
        assert!(decode_envelope(r#"{"op":"city_load"}"#).is_err());
        assert!(decode_envelope(r#"{"op":"atsq","city":7,"stops":[]}"#).is_err());
    }

    #[test]
    fn tenant_submit_errors_map_to_statuses() {
        use atsq_tenant::{CityId, TenantError};
        let overloaded = SubmitError::CityOverloaded(CityId::new("tokyo").unwrap());
        match decode_server_reply(&encode_submit_error(&overloaded).to_json()).unwrap() {
            ServerReply::Rejected(msg) => assert!(msg.contains("tokyo"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }
        let unknown = SubmitError::City(TenantError::UnknownCity(CityId::new("atlantis").unwrap()));
        match decode_server_reply(&encode_submit_error(&unknown).to_json()).unwrap() {
            ServerReply::Error(msg) => assert!(msg.contains("atlantis"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_ops_name_themselves_in_the_error() {
        // The op is validated before the query body, so a bare unknown
        // op reports itself rather than a missing-stops complaint.
        let err = decode_client_line(r#"{"op":"warp"}"#, &dataset()).unwrap_err();
        assert!(err.to_string().contains("unknown op `warp`"), "{err}");
    }

    #[test]
    fn responses_roundtrip() {
        let ok = Response::Ok {
            results: Arc::new(vec![QueryResult::new(TrajectoryId(4), 1.75)]),
            cached: true,
        };
        match decode_server_reply(&encode_response(&ok, None).to_json()).unwrap() {
            ServerReply::Ok { results, cached } => {
                assert!(cached);
                assert_eq!(results, vec![QueryResult::new(TrajectoryId(4), 1.75)]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            decode_server_reply(&encode_response(&Response::Expired, None).to_json()).unwrap(),
            ServerReply::Expired
        );
        match decode_server_reply(&encode_submit_error(&SubmitError::QueueFull).to_json()).unwrap()
        {
            ServerReply::Rejected(msg) => assert!(msg.contains("full")),
            other => panic!("unexpected {other:?}"),
        }
        match decode_server_reply(&encode_error("boom").to_json()).unwrap() {
            ServerReply::Error(msg) => assert_eq!(msg, "boom"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn request_ids_echo_through_the_wire() {
        let ok = Response::Ok {
            results: Arc::new(Vec::new()),
            cached: false,
        };
        let line = encode_response(&ok, Some(712)).to_json();
        let (id, reply) = decode_server_reply_full(&line).unwrap();
        assert_eq!(id, Some(712));
        assert!(matches!(reply, ServerReply::Ok { .. }));
        // Replies without an id (tracing off, admission errors) decode
        // to None rather than erroring.
        let (id, reply) = decode_server_reply_full(&encode_error("boom").to_json()).unwrap();
        assert_eq!(id, None);
        assert_eq!(reply, ServerReply::Error("boom".into()));
    }

    #[test]
    fn metrics_reply_carries_exposition_text() {
        let line = encode_metrics("# HELP x X.\n# TYPE x counter\nx 1\n").to_json();
        let value = parse(&line).unwrap();
        assert_eq!(value.get("status").and_then(Value::as_str), Some("ok"));
        let text = value.get("metrics").and_then(Value::as_str).unwrap();
        assert!(text.contains("x 1\n"), "{text}");
    }

    #[test]
    fn slowlog_reply_breaks_down_stages_and_counters() {
        use atsq_obs::QueryCounters;
        use std::time::Instant;
        let entry = SlowEntry {
            report: atsq_obs::TraceReport {
                request_id: 9,
                op: "atsq",
                status: "ok",
                cached: false,
                total_ns: 6_000_000,
                stage_ns: [1_000_000, 2_000_000, 500_000, 500_000, 1_500_000, 500_000],
                counters: QueryCounters {
                    candidates: 11,
                    distance_evals: 4,
                    tas_checks: 10,
                    tas_false_positives: 1,
                    apl_reads: 5,
                    cold_reads: 2,
                },
                shard_busy_ns: vec![1_000_000, 500_000],
            },
            recorded_at: Instant::now(),
        };
        let value = parse(&encode_slowlog(&[entry]).to_json()).unwrap();
        assert_eq!(value.get("status").and_then(Value::as_str), Some("ok"));
        let entries = value.get("entries").and_then(Value::as_arr).unwrap();
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.get("request_id").and_then(Value::as_f64), Some(9.0));
        assert_eq!(e.get("op").and_then(Value::as_str), Some("atsq"));
        assert_eq!(e.get("total_ms").and_then(Value::as_f64), Some(6.0));
        let stages = e.get("stages").unwrap();
        let mut stage_sum = 0.0;
        for stage in ["admission", "queue", "cache", "assembly", "engine", "reply"] {
            stage_sum += stages.get(stage).and_then(Value::as_f64).unwrap();
        }
        // The stage breakdown sums exactly to the end-to-end latency.
        assert_eq!(stage_sum, 6.0);
        let counters = e.get("counters").unwrap();
        assert_eq!(
            counters.get("candidates").and_then(Value::as_f64),
            Some(11.0)
        );
        assert_eq!(
            counters.get("cold_reads").and_then(Value::as_f64),
            Some(2.0)
        );
        let busy = e.get("shard_busy_ms").and_then(Value::as_arr).unwrap();
        assert_eq!(busy.len(), 2);
        assert_eq!(busy[0].as_f64(), Some(1.0));
    }
}
