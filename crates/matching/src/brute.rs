//! Exponential reference oracles for the matching kernels.
//!
//! These enumerate point-match combinations directly from the
//! definitions in §II and §VI-A, with no pruning or clever ordering.
//! They exist purely to validate the optimised kernels on small inputs
//! (unit tests and property tests); complexity is `O(2^n)` per query
//! point and worse for the order-sensitive oracle.

use atsq_types::{Query, TrajectoryPoint};

/// Brute-force `Dmpm(q, Tr)` (Definition 4): minimum over all subsets
/// of trajectory points whose activity union covers `q.Φ` of the sum
/// of their distances to `q`.
pub fn brute_dmpm(
    q_loc: &atsq_types::Point,
    q_activities: &atsq_types::ActivitySet,
    points: &[TrajectoryPoint],
) -> Option<f64> {
    assert!(points.len() <= 20, "brute oracle limited to 20 points");
    let n = points.len();
    let mut best: Option<f64> = None;
    for subset in 1u32..(1 << n) {
        let mut union = atsq_types::ActivitySet::new();
        let mut cost = 0.0;
        for (i, p) in points.iter().enumerate() {
            if subset & (1 << i) != 0 {
                union.extend_from(&p.activities);
                cost += q_loc.dist(&p.loc);
            }
        }
        if q_activities.is_subset_of(&union) && best.is_none_or(|b| cost < b) {
            best = Some(cost);
        }
    }
    best
}

/// Brute-force `Dmm(Q, Tr)` (Definition 6 via Lemma 1).
pub fn brute_dmm(query: &Query, points: &[TrajectoryPoint]) -> Option<f64> {
    let mut total = 0.0;
    for q in &query.points {
        total += brute_dmpm(&q.loc, &q.activities, points)?;
    }
    Some(total)
}

/// Brute-force `Dmom(Q, Tr)` (Definition 7): enumerates, for each query
/// point in order, every covering subset of the still-allowed suffix of
/// trajectory points, enforcing `max(P_i) ≤ min(P_{i+1})`.
pub fn brute_dmom(query: &Query, points: &[TrajectoryPoint]) -> Option<f64> {
    assert!(
        points.len() <= 12,
        "brute order oracle limited to 12 points"
    );
    fn recurse(query: &Query, points: &[TrajectoryPoint], qi: usize, lo: usize) -> Option<f64> {
        if qi == query.points.len() {
            return Some(0.0);
        }
        let q = &query.points[qi];
        let n = points.len();
        let avail = n - lo;
        let mut best: Option<f64> = None;
        for subset in 1u32..(1 << avail) {
            let mut union = atsq_types::ActivitySet::new();
            let mut cost = 0.0;
            let mut max_idx = lo;
            for b in 0..avail {
                if subset & (1 << b) != 0 {
                    let idx = lo + b;
                    union.extend_from(&points[idx].activities);
                    cost += q.loc.dist(&points[idx].loc);
                    max_idx = idx;
                }
            }
            if !q.activities.is_subset_of(&union) {
                continue;
            }
            if let Some(rest) = recurse(query, points, qi + 1, max_idx) {
                let total = cost + rest;
                if best.is_none_or(|b| total < b) {
                    best = Some(total);
                }
            }
        }
        best
    }
    recurse(query, points, 0, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::match_distance::min_match_distance;
    use crate::order_match::min_order_match_distance;
    use crate::point_match::min_point_match_distance;
    use atsq_types::{ActivitySet, Point, QueryPoint};

    fn tp(x: f64, y: f64, acts: &[u32]) -> TrajectoryPoint {
        TrajectoryPoint::new(
            Point::new(x, y),
            ActivitySet::from_raw(acts.iter().copied()),
        )
    }

    fn qp(x: f64, y: f64, acts: &[u32]) -> QueryPoint {
        QueryPoint::new(
            Point::new(x, y),
            ActivitySet::from_raw(acts.iter().copied()),
        )
    }

    #[test]
    fn brute_dmpm_simple() {
        let pts = vec![
            tp(1.0, 0.0, &[1]),
            tp(2.0, 0.0, &[2]),
            tp(4.0, 0.0, &[1, 2]),
        ];
        let q = Point::new(0.0, 0.0);
        let acts = ActivitySet::from_raw([1, 2]);
        assert_eq!(brute_dmpm(&q, &acts, &pts), Some(3.0));
        assert_eq!(brute_dmpm(&q, &ActivitySet::from_raw([9]), &pts), None);
    }

    #[test]
    fn oracles_agree_with_kernels_fixed_cases() {
        let pts = vec![
            tp(0.0, 1.0, &[1]),
            tp(2.0, 0.0, &[2, 3]),
            tp(0.0, 3.0, &[1, 3]),
            tp(4.0, 4.0, &[2]),
            tp(1.0, 1.0, &[3]),
        ];
        let queries = vec![
            Query::new(vec![qp(0.0, 0.0, &[1, 2])]).unwrap(),
            Query::new(vec![qp(0.0, 0.0, &[1]), qp(3.0, 3.0, &[2, 3])]).unwrap(),
            Query::new(vec![
                qp(1.0, 0.0, &[3]),
                qp(0.0, 1.0, &[1]),
                qp(2.0, 2.0, &[2]),
            ])
            .unwrap(),
        ];
        for query in &queries {
            assert_eq!(brute_dmm(query, &pts), min_match_distance(query, &pts));
            assert_eq!(
                brute_dmom(query, &pts),
                min_order_match_distance(query, &pts, f64::INFINITY),
                "query: {query:?}"
            );
            for q in &query.points {
                assert_eq!(
                    brute_dmpm(&q.loc, &q.activities, &pts),
                    min_point_match_distance(&q.loc, &q.activities, &pts)
                );
            }
        }
    }

    #[test]
    fn brute_dmom_enforces_order() {
        let pts = vec![tp(0.0, 0.0, &[2]), tp(1.0, 0.0, &[1])];
        let query = Query::new(vec![qp(0.0, 0.0, &[1]), qp(0.0, 0.0, &[2])]).unwrap();
        assert_eq!(brute_dmom(&query, &pts), None);
        let query_rev = Query::new(vec![qp(0.0, 0.0, &[2]), qp(0.0, 0.0, &[1])]).unwrap();
        assert_eq!(brute_dmom(&query_rev, &pts), Some(1.0));
    }
}
