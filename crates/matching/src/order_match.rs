//! Algorithm 4 — minimum order-sensitive match distance `Dmom(Q, Tr)`.
//!
//! The order-sensitive match (Definition 7) requires the point matches
//! of `q1, …, qm` to appear in non-decreasing trajectory order: every
//! point matched to `qi` must have index ≤ every point matched to `qj`
//! for `i < j` (sharing a boundary point is allowed). Lemma 1 no longer
//! applies, so the paper solves it with the Eq. (1) dynamic program
//!
//! ```text
//! G(i, j) = min_{1 ≤ k ≤ j} { G(i−1, k) + Dmpm(qi, Tr[k, j]) }
//! ```
//!
//! where `G(i, j)` is the `Dmom` between the sub-query `Q[1, i]` and
//! the sub-trajectory `Tr[1, j]`. Iterating `k` downward from `j` lets
//! `Dmpm(qi, Tr[k, j])` be evaluated incrementally (one
//! [`IncrementalCover::add_point`] per step) and enables the Lemma-4
//! break: once `G(i−1, k) = +∞`, all smaller `k` are infinite too.

use crate::point_match::{CandidatePoint, IncrementalCover, QueryMask};
use atsq_types::{Query, TrajectoryPoint};

/// Matching index bounds check (§VI-B).
///
/// For each query point `qi`, let `MIB(qi) = [lb, ub]` be the smallest
/// and greatest trajectory indexes of points carrying *any* activity of
/// `qi.Φ`. If some pair `i < j` has `MIB(qi).lb > MIB(qj).ub`, no
/// order-sensitive match can exist and the candidate can be discarded
/// without running the (much costlier) dynamic program. Also fails when
/// some query point has no covering points at all.
///
/// This is a *necessary* condition only — survivors may still turn out
/// unmatched in [`min_order_match_distance`].
pub fn order_feasible(query: &Query, points: &[TrajectoryPoint]) -> bool {
    let mut bounds = Vec::with_capacity(query.points.len());
    for q in &query.points {
        let mut lb = usize::MAX;
        let mut ub = 0usize;
        let mut seen = false;
        for (idx, p) in points.iter().enumerate() {
            if p.activities.intersects(&q.activities) {
                if !seen {
                    lb = idx;
                    seen = true;
                }
                ub = idx;
            }
        }
        if !seen {
            return false;
        }
        bounds.push((lb, ub));
    }
    for i in 0..bounds.len() {
        for j in i + 1..bounds.len() {
            if bounds[i].0 > bounds[j].1 {
                return false;
            }
        }
    }
    true
}

/// Algorithm 4: `Dmom(Q, Tr)` with early termination.
///
/// `dk_mom` is the `k`-th smallest `Dmom` found so far by the caller's
/// top-k loop; per the paper's line 9 the computation aborts (returning
/// `None`) as soon as a completed row `i` has `G(i, |Tr|) > dk_mom`,
/// because Lemma 4 guarantees `G(|Q|, |Tr|)` can only be larger. Pass
/// `f64::INFINITY` to always obtain the exact value.
///
/// Returns `None` when no order-sensitive match exists or the early
/// exit fired; in both cases the trajectory cannot improve on the
/// caller's current top-k.
#[allow(clippy::needless_range_loop)]
pub fn min_order_match_distance(
    query: &Query,
    points: &[TrajectoryPoint],
    dk_mom: f64,
) -> Option<f64> {
    let m = query.points.len();
    let n = points.len();
    if m == 0 || n == 0 {
        return None;
    }

    // Cheap necessary condition first.
    if !order_feasible(query, points) {
        return None;
    }

    // Guardian row: G(0, k) = 0 for every k.
    let mut prev = vec![0.0f64; n + 1];
    let mut curr = vec![f64::INFINITY; n + 1];

    for (i, q) in query.points.iter().enumerate() {
        let qmask = QueryMask::new(&q.activities);
        // Pre-compute the per-point coverage for qi once.
        let masks: Vec<u32> = points
            .iter()
            .map(|p| qmask.cover_mask(&p.activities))
            .collect();
        let dists: Vec<f64> = points.iter().map(|p| q.loc.dist(&p.loc)).collect();

        curr[0] = f64::INFINITY;
        let mut cover = IncrementalCover::new(&qmask);
        for j in 1..=n {
            // G(i, j) = min_{k ≤ j} G(i-1, k) + Dmpm(qi, Tr[k..=j]).
            // Grow the window from Tr[j..=j] down to Tr[1..=j].
            cover.clear();
            let mut best = f64::INFINITY;
            for k in (1..=j).rev() {
                let g_prev = prev[k];
                // Lemma 4 / paper line 6: G(i-1, ·) is non-increasing
                // in its column, so once +∞ appears every smaller k is
                // +∞ as well — but the window must still absorb p_k
                // before breaking is valid only when we stop using it;
                // we can break outright because no smaller k will be
                // consulted again for this j.
                if g_prev.is_infinite() {
                    break;
                }
                cover.add_point(CandidatePoint {
                    dist: dists[k - 1],
                    mask: masks[k - 1],
                });
                if let Some(dmpm) = cover.full_cover_cost() {
                    let total = g_prev + dmpm;
                    if total < best {
                        best = total;
                    }
                }
            }
            curr[j] = best;
        }

        // Paper line 9: early exit on the row's rightmost entry.
        if curr[n] > dk_mom {
            return None;
        }
        // No entry in this row is finite -> no match is possible for
        // any extension either (Lemma 4 property 2).
        if curr.iter().all(|v| v.is_infinite()) {
            return None;
        }
        std::mem::swap(&mut prev, &mut curr);
        let _ = i;
    }

    let result = prev[n];
    result.is_finite().then_some(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::match_distance::min_match_distance;
    use atsq_types::{ActivitySet, Point, QueryPoint};

    fn tp(x: f64, y: f64, acts: &[u32]) -> TrajectoryPoint {
        TrajectoryPoint::new(
            Point::new(x, y),
            ActivitySet::from_raw(acts.iter().copied()),
        )
    }

    fn qp(x: f64, y: f64, acts: &[u32]) -> QueryPoint {
        QueryPoint::new(
            Point::new(x, y),
            ActivitySet::from_raw(acts.iter().copied()),
        )
    }

    /// Reconstructs the paper's Table III: the G matrix for the Fig. 1
    /// query against Tr1, yielding Dmom = 56.
    ///
    /// We place query and trajectory points on a plane that reproduces
    /// the exact distance matrix of Fig. 1 row by row: since the DP
    /// consumes only pairwise distances, we verify against a trajectory
    /// laid out on a line per query point. Instead of forcing one
    /// embedding to satisfy all three rows simultaneously (the matrix is
    /// not planar-realisable), we check the DP against a hand-computed
    /// oracle using injected distances below in `paper_table_iii`.
    #[test]
    fn order_sensitive_basics() {
        // q1 wants activity 1 then q2 wants activity 2, but the
        // trajectory visits 2 before 1 -> order-sensitive match must
        // fail while the unordered match succeeds.
        let tr = vec![tp(10.0, 0.0, &[2]), tp(0.0, 0.0, &[1])];
        let query = Query::new(vec![qp(0.0, 0.0, &[1]), qp(10.0, 0.0, &[2])]).unwrap();
        assert_eq!(min_match_distance(&query, &tr), Some(0.0));
        assert_eq!(min_order_match_distance(&query, &tr, f64::INFINITY), None);
        assert!(!order_feasible(&query, &tr));

        // Reversed trajectory order satisfies it.
        let tr2 = vec![tp(0.0, 0.0, &[1]), tp(10.0, 0.0, &[2])];
        assert_eq!(
            min_order_match_distance(&query, &tr2, f64::INFINITY),
            Some(0.0)
        );
        assert!(order_feasible(&query, &tr2));
    }

    #[test]
    fn shared_boundary_point_is_allowed() {
        // Definition 7 allows the same point to serve consecutive query
        // points ("smaller than or equal to").
        let tr = vec![tp(5.0, 0.0, &[1, 2])];
        let query = Query::new(vec![qp(4.0, 0.0, &[1]), qp(6.0, 0.0, &[2])]).unwrap();
        assert_eq!(
            min_order_match_distance(&query, &tr, f64::INFINITY),
            Some(2.0)
        );
    }

    #[test]
    fn dmm_lower_bounds_dmom() {
        // Lemma 3 on a case where order forces a worse assignment.
        let tr = vec![
            tp(0.0, 0.0, &[2]), // near q2's wish but early
            tp(9.0, 0.0, &[1]),
            tp(10.0, 0.0, &[2]),
        ];
        let query = Query::new(vec![qp(8.0, 0.0, &[1]), qp(0.5, 0.0, &[2])]).unwrap();
        let dmm = min_match_distance(&query, &tr).unwrap();
        let dmom = min_order_match_distance(&query, &tr, f64::INFINITY).unwrap();
        // Unordered: q1 -> p2 (1.0), q2 -> p1 (0.5) = 1.5.
        assert!((dmm - 1.5).abs() < 1e-12);
        // Ordered: q2 must match at/after p2 -> p3 (9.5): 1.0 + 9.5.
        assert!((dmom - 10.5).abs() < 1e-12);
        assert!(dmm <= dmom);
    }

    #[test]
    fn early_exit_prunes() {
        let tr = vec![tp(100.0, 0.0, &[1]), tp(100.0, 0.0, &[2])];
        let query = Query::new(vec![qp(0.0, 0.0, &[1]), qp(0.0, 0.0, &[2])]).unwrap();
        let exact = min_order_match_distance(&query, &tr, f64::INFINITY).unwrap();
        assert_eq!(exact, 200.0);
        // A threshold below the first row's value aborts early.
        assert_eq!(min_order_match_distance(&query, &tr, 50.0), None);
        // A threshold above it returns the exact value.
        assert_eq!(min_order_match_distance(&query, &tr, 250.0), Some(200.0));
    }

    #[test]
    fn empty_inputs() {
        let query = Query::new(vec![qp(0.0, 0.0, &[1])]).unwrap();
        assert_eq!(min_order_match_distance(&query, &[], f64::INFINITY), None);
        assert!(!order_feasible(&query, &[]));
    }

    #[test]
    fn multi_point_match_within_window() {
        // q1 needs {1,2}, covered only by combining two points; q2
        // needs {3} strictly afterwards.
        let tr = vec![tp(1.0, 0.0, &[1]), tp(2.0, 0.0, &[2]), tp(3.0, 0.0, &[3])];
        let query = Query::new(vec![qp(0.0, 0.0, &[1, 2]), qp(3.0, 0.0, &[3])]).unwrap();
        let d = min_order_match_distance(&query, &tr, f64::INFINITY).unwrap();
        assert!((d - 3.0).abs() < 1e-12); // (1 + 2) + 0
    }

    #[test]
    fn order_feasible_is_only_necessary() {
        // MIB intervals overlap, yet no ordered match exists: q1 needs
        // {1,2} together but the only '1' is after the only '2' usable
        // by q2... construct: activities 1 at idx1, 2 at idx0 and idx2.
        let tr = vec![tp(0.0, 0.0, &[2]), tp(1.0, 0.0, &[3]), tp(2.0, 0.0, &[1])];
        let query = Query::new(vec![qp(0.0, 0.0, &[1]), qp(0.0, 0.0, &[2])]).unwrap();
        // MIB(q1) = [2,2], MIB(q2) = [0,0]; 2 > 0 -> infeasible, good.
        assert!(!order_feasible(&query, &tr));

        // Now a subtler case: q1 = {1,3}, q2 = {2}. MIB(q1) = [1,2],
        // MIB(q2) = [0,0] -> lb(q1)=1 > ub(q2)=0 -> infeasible.
        let query2 = Query::new(vec![qp(0.0, 0.0, &[1, 3]), qp(0.0, 0.0, &[2])]).unwrap();
        assert!(!order_feasible(&query2, &tr));

        // Feasible-by-MIB but truly unmatchable: q1={1,2} needs both,
        // with 2 only at idx0 and 1 only at idx2; q2={3} only at idx1.
        // MIB(q1)=[0,2], MIB(q2)=[1,1]: passes MIB. But q1's match must
        // include idx2 (> q2's idx1), violating order.
        let query3 = Query::new(vec![qp(0.0, 0.0, &[1, 2]), qp(0.0, 0.0, &[3])]).unwrap();
        assert!(order_feasible(&query3, &tr));
        assert_eq!(min_order_match_distance(&query3, &tr, f64::INFINITY), None);
    }

    /// Table III of the paper, driven end-to-end through the public DP
    /// with a planar embedding that realises the required distances.
    ///
    /// Only distances from each query point to each trajectory point
    /// matter, and only for points carrying relevant activities. We
    /// embed Tr1 on the x-axis and realise each query row with exact
    /// distances via y-offsets where needed; simpler: we verify the
    /// three row values (24, 55, 56) using a dedicated harness in
    /// tests/paper_examples.rs where the full matrix is injected. Here
    /// we assert the final value using a faithful 1-D reconstruction of
    /// the relevant entries.
    #[test]
    fn paper_table_iii_shape() {
        // Relevant entries: d(q1,p2)=8, d(q1,p3)=16, d(q2,p4)=11,
        // d(q2,p5)=20, d(q3,p5)=1. Build coordinates so those hold:
        // place all points on a line and query points off-line is
        // overconstrained; instead test the DP kernel directly through
        // G-row arithmetic in tests/paper_examples.rs. Here: a scaled
        // surrogate with the same structure.
        let tr = vec![
            tp(0.0, 0.0, &[4]),     // p1 {d}
            tp(8.0, 0.0, &[1, 3]),  // p2 {a,c}
            tp(16.0, 0.0, &[2]),    // p3 {b}
            tp(24.0, 0.0, &[3]),    // p4 {c}
            tp(32.0, 0.0, &[4, 5]), // p5 {d,e}
        ];
        let query = Query::new(vec![
            qp(0.0, 0.0, &[1, 2]),  // q1 {a,b}
            qp(20.0, 0.0, &[3, 4]), // q2 {c,d}
            qp(32.0, 0.0, &[5]),    // q3 {e}
        ])
        .unwrap();
        // q1: p2 (8) + p3 (16) = 24. q2 after index 3: p4 (4) + p5 (12)
        // = 16. q3: p5 (0). Total 40.
        let d = min_order_match_distance(&query, &tr, f64::INFINITY).unwrap();
        assert!((d - 40.0).abs() < 1e-12);
    }
}
