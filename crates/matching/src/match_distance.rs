//! `Dmm(Q, Tr)` — the minimum match distance (Definition 6) — and the
//! purely spatial best-match lower bound `Dbm` (Lemma 2).

use crate::point_match::{candidate_points, dmpm_from_sorted_with, IncrementalCover, QueryMask};
use atsq_types::{Query, TrajectoryPoint};

/// Minimum match distance `Dmm(Q, Tr)`.
///
/// By Lemma 1 the minimum match decomposes into independent minimum
/// point matches, so this is the sum of Algorithm-3 results over the
/// query points. Returns `None` when any query point has no point
/// match in the trajectory (the trajectory is not a match, Def. 5).
pub fn min_match_distance(query: &Query, points: &[TrajectoryPoint]) -> Option<f64> {
    let mut total = 0.0;
    for q in &query.points {
        let qmask = QueryMask::new(&q.activities);
        let cp = candidate_points(&q.loc, &qmask, points);
        let mut table = IncrementalCover::new(&qmask);
        total += dmpm_from_sorted_with(&mut table, &cp)?;
    }
    Some(total)
}

/// Best match distance `Dbm(Q, Tr) = Σ_q min_p d(q, p)` — the distance
/// of Chen et al.'s k-BCT query, ignoring activities entirely.
///
/// Lemma 2: `Dbm(Q, Tr) ≤ Dmm(Q, Tr)`, which makes this the
/// termination threshold of the R-tree baseline. Returns `+∞` for an
/// empty trajectory (no nearest point exists).
pub fn best_match_distance(query: &Query, points: &[TrajectoryPoint]) -> f64 {
    query
        .points
        .iter()
        .map(|q| {
            points
                .iter()
                .map(|p| q.loc.dist(&p.loc))
                .fold(f64::INFINITY, f64::min)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsq_types::{ActivitySet, Point, QueryPoint};

    fn tp(x: f64, y: f64, acts: &[u32]) -> TrajectoryPoint {
        TrajectoryPoint::new(
            Point::new(x, y),
            ActivitySet::from_raw(acts.iter().copied()),
        )
    }

    fn qp(x: f64, y: f64, acts: &[u32]) -> QueryPoint {
        QueryPoint::new(
            Point::new(x, y),
            ActivitySet::from_raw(acts.iter().copied()),
        )
    }

    #[test]
    fn dmm_sums_per_query_point() {
        let query = Query::new(vec![qp(0.0, 0.0, &[1]), qp(10.0, 0.0, &[2])]).unwrap();
        let tr = vec![tp(1.0, 0.0, &[1]), tp(9.0, 0.0, &[2])];
        assert_eq!(min_match_distance(&query, &tr), Some(2.0));
    }

    #[test]
    fn dmm_none_when_activity_missing() {
        let query = Query::new(vec![qp(0.0, 0.0, &[1]), qp(1.0, 0.0, &[9])]).unwrap();
        let tr = vec![tp(0.0, 0.0, &[1])];
        assert_eq!(min_match_distance(&query, &tr), None);
    }

    #[test]
    fn dbm_lower_bounds_dmm() {
        // Nearest point lacks the activity, so Dmm must use a farther
        // point while Dbm happily uses the nearest one.
        let query = Query::new(vec![qp(0.0, 0.0, &[1])]).unwrap();
        let tr = vec![tp(1.0, 0.0, &[7]), tp(5.0, 0.0, &[1])];
        let dbm = best_match_distance(&query, &tr);
        let dmm = min_match_distance(&query, &tr).unwrap();
        assert_eq!(dbm, 1.0);
        assert_eq!(dmm, 5.0);
        assert!(dbm <= dmm);
    }

    #[test]
    fn dbm_empty_trajectory_is_infinite() {
        let query = Query::new(vec![qp(0.0, 0.0, &[1])]).unwrap();
        assert_eq!(best_match_distance(&query, &[]), f64::INFINITY);
    }

    /// The running example of Fig. 1: Tr2 must beat Tr1 on Dmm even
    /// though Tr1 is geometrically closer, which is the paper's whole
    /// motivation.
    #[test]
    fn figure_one_motivating_example() {
        // We reconstruct the distances via explicit point matches using
        // the paper's distance matrices rather than coordinates; here it
        // suffices to verify with the matrices interpreted as 1-D
        // layouts is impossible, so we instead verify the ordering on a
        // faithful synthetic layout in tests/paper_examples.rs. This
        // unit test covers the Dbm-vs-Dmm inversion in miniature.
        let query = Query::new(vec![qp(0.0, 0.0, &[1, 2])]).unwrap();
        let tr_close_wrong = vec![tp(0.1, 0.0, &[3])]; // near but useless
        let tr_far_right = vec![tp(2.0, 0.0, &[1]), tp(3.0, 0.0, &[2])];
        assert_eq!(min_match_distance(&query, &tr_close_wrong), None);
        assert_eq!(min_match_distance(&query, &tr_far_right), Some(5.0));
        assert!(
            best_match_distance(&query, &tr_close_wrong)
                < best_match_distance(&query, &tr_far_right)
        );
    }
}
