//! Match-distance kernels of the paper.
//!
//! * [`point_match`] — Algorithm 3: the minimum point match distance
//!   `Dmpm(q, Tr)` (Definition 4), computed with the subset hash table
//!   and early termination of §V-D, plus an incremental variant used by
//!   the order-sensitive dynamic program.
//! * [`match_distance`] — `Dmm(Q, Tr)` via Lemma 1 (sum of per-point
//!   `Dmpm`), and the best-match lower bound `Dbm` of Lemma 2.
//! * [`order_match`] — Algorithm 4: the minimum order-sensitive match
//!   distance `Dmom(Q, Tr)` (Definition 7) with the Eq. (1) dynamic
//!   program, Lemma-4 monotonicity pruning and the `Dkmom` early exit,
//!   plus the MIB (matching index bound) candidate filter of §VI-B.
//! * [`witness`] — witness extraction: the matched point *sets*
//!   (`Tr.MPM`, `Tr.MM`, `Tr.MOM`), for applications that must show
//!   which venues realised a result.
//! * [`brute`] — exponential reference oracles used by the test suite
//!   to validate every kernel on small inputs.
//!
//! All kernels operate on borrowed trajectory data; index structures
//! (GAT, R-tree, …) decide *which* trajectories reach these kernels.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod brute;
pub mod match_distance;
pub mod order_match;
pub mod point_match;
pub mod witness;

pub use match_distance::{best_match_distance, min_match_distance};
pub use order_match::{min_order_match_distance, order_feasible};
pub use point_match::{min_point_match_distance, CandidatePoint, IncrementalCover, QueryMask};
pub use witness::{min_match_witness, min_order_match_witness, PointMatchWitness};
