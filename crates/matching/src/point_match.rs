//! Algorithm 3 — minimum point match distance `Dmpm(q, Tr)`.
//!
//! Given a query point `q` with activity set `q.Φ` and the points of a
//! candidate trajectory, the minimum point match (Definition 4) is the
//! cheapest set of trajectory points whose activity union covers `q.Φ`,
//! where the cost of a set is the *sum* of the distances of its points
//! to `q`. This module implements the paper's subset-combination scheme:
//! a table keyed by covered subsets of `q.Φ`, points processed in
//! ascending distance order with the early-termination test of line 5.
//!
//! Since query activity sets are tiny (the paper sweeps `|q.Φ| ∈ 1..5`)
//! we key the table by `u64` bitmasks over the *positions inside*
//! `q.Φ`, storing it densely as a `2^|q.Φ|` array; this is the same
//! recurrence as the paper's hash table `H`, with the FIFO subset
//! queue made unnecessary by dense storage. `|q.Φ|` is capped at
//! [`QueryMask::MAX_ACTIVITIES`].

use atsq_types::{ActivitySet, Point, TrajectoryPoint};

/// Maps the activities of one query point to bit positions, so that
/// subsets of `q.Φ` become machine-word bitmasks.
#[derive(Debug, Clone)]
pub struct QueryMask {
    activities: ActivitySet,
}

impl QueryMask {
    /// Largest supported `|q.Φ|`. The dense subset table is `2^|q.Φ|`
    /// entries, so 20 bounds it at one million f64s — far beyond any
    /// realistic query (the paper's maximum is 5).
    pub const MAX_ACTIVITIES: usize = 20;

    /// Builds the mask mapping for a query activity set.
    ///
    /// # Panics
    /// Panics if the set is empty or larger than
    /// [`QueryMask::MAX_ACTIVITIES`].
    pub fn new(activities: &ActivitySet) -> Self {
        assert!(
            !activities.is_empty(),
            "query point must request at least one activity"
        );
        assert!(
            activities.len() <= Self::MAX_ACTIVITIES,
            "query activity set larger than {} not supported",
            Self::MAX_ACTIVITIES
        );
        QueryMask {
            activities: activities.clone(),
        }
    }

    /// Number of query activities (`|q.Φ|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.activities.len()
    }

    /// Always false — construction rejects empty sets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The bitmask with every query activity covered.
    #[inline]
    pub fn full_mask(&self) -> u32 {
        ((1u64 << self.activities.len()) - 1) as u32
    }

    /// The coverage mask of a trajectory point's activity set: bit `i`
    /// is set iff the point carries the `i`-th activity of `q.Φ`
    /// (the paper's `p.Φ′ = p.Φ ∩ q.Φ`).
    pub fn cover_mask(&self, point_activities: &ActivitySet) -> u32 {
        let mut mask = 0u32;
        for (i, a) in self.activities.iter().enumerate() {
            if point_activities.contains(a) {
                mask |= 1 << i;
            }
        }
        mask
    }
}

/// A trajectory point reduced to what Algorithm 3 needs: its distance
/// to the query point and its coverage mask.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidatePoint {
    /// `d(p, q)`.
    pub dist: f64,
    /// Coverage of `q.Φ` as a [`QueryMask`] bitmask; zero-coverage
    /// points are useless and may be dropped by callers.
    pub mask: u32,
}

/// Builds the candidate point list `CP` of Algorithm 3 (line 1–2) for
/// one query point: every trajectory point that covers at least one
/// query activity, sorted ascending by distance.
pub fn candidate_points(
    q_loc: &Point,
    qmask: &QueryMask,
    points: &[TrajectoryPoint],
) -> Vec<CandidatePoint> {
    let mut cp: Vec<CandidatePoint> = points
        .iter()
        .filter_map(|p| {
            let mask = qmask.cover_mask(&p.activities);
            (mask != 0).then(|| CandidatePoint {
                dist: q_loc.dist(&p.loc),
                mask,
            })
        })
        .collect();
    cp.sort_by(|a, b| {
        a.dist
            .partial_cmp(&b.dist)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    cp
}

/// The dense subset table `H` of Algorithm 3: `cost[S]` is the current
/// minimum point-match distance covering exactly the query-activity
/// subset `S` (or a superset of it reached by combination).
///
/// Exposed publicly because Algorithm 4 reuses it incrementally: the
/// inner loop of the order-sensitive DP grows the window `Tr[k, j]` one
/// point at a time (`k` decreasing), which maps to one
/// [`IncrementalCover::add_point`] call per step.
#[derive(Debug, Clone)]
pub struct IncrementalCover {
    cost: Vec<f64>,
    full: u32,
}

impl IncrementalCover {
    /// An empty cover table for the given query mask.
    pub fn new(qmask: &QueryMask) -> Self {
        let full = qmask.full_mask();
        IncrementalCover {
            cost: vec![f64::INFINITY; (full as usize) + 1],
            full,
        }
    }

    /// Resets the table to the empty state without reallocating.
    pub fn clear(&mut self) {
        self.cost.fill(f64::INFINITY);
    }

    /// Folds one point into the table: for every already-coverable
    /// subset `S`, `S ∪ ks` becomes coverable at `cost[S] + d`, and
    /// `ks` itself at `d` (the update rule of Algorithm 3 lines 10–19,
    /// applied densely).
    pub fn add_point(&mut self, p: CandidatePoint) {
        let ks = p.mask as usize;
        if ks == 0 {
            return;
        }
        // Combine with every existing subset. In-place iteration is
        // sound: an entry updated this round already includes `p`'s
        // cost, and folding `p` in twice can only produce a larger
        // value, which the `min` discards.
        for s in 0..self.cost.len() {
            let c = self.cost[s];
            if c.is_finite() {
                let key = s | ks;
                if key != s {
                    let combined = c + p.dist;
                    if combined < self.cost[key] {
                        self.cost[key] = combined;
                    }
                }
            }
        }
        if p.dist < self.cost[ks] {
            self.cost[ks] = p.dist;
        }
    }

    /// Current best cost covering all query activities
    /// (`H[q.Φ]`), or `None` if the points seen so far do not cover
    /// the query.
    #[inline]
    pub fn full_cover_cost(&self) -> Option<f64> {
        let c = self.cost[self.full as usize];
        c.is_finite().then_some(c)
    }

    /// Current best cost covering at least subset `mask`.
    #[inline]
    pub fn cover_cost(&self, mask: u32) -> Option<f64> {
        let c = self.cost[mask as usize];
        c.is_finite().then_some(c)
    }
}

/// Algorithm 3: minimum point match distance from sorted candidates.
///
/// `sorted_cp` must be ascending by `dist` (as produced by
/// [`candidate_points`]); the early-termination test of line 5 relies
/// on it. Returns `None` when no point match exists (Definition 3
/// unsatisfiable).
pub fn dmpm_from_sorted(qmask: &QueryMask, sorted_cp: &[CandidatePoint]) -> Option<f64> {
    let mut table = IncrementalCover::new(qmask);
    dmpm_from_sorted_with(&mut table, sorted_cp)
}

/// As [`dmpm_from_sorted`], reusing a caller-provided table to avoid
/// per-call allocation in hot loops. The table is cleared first.
pub fn dmpm_from_sorted_with(
    table: &mut IncrementalCover,
    sorted_cp: &[CandidatePoint],
) -> Option<f64> {
    table.clear();
    for &p in sorted_cp {
        // Line 5: if the best full cover found so far is already
        // cheaper than this (and hence every later) single point's
        // distance, no further point can improve the match.
        if let Some(best) = table.full_cover_cost() {
            if best <= p.dist {
                return Some(best);
            }
        }
        table.add_point(p);
    }
    table.full_cover_cost()
}

/// End-to-end `Dmpm(q, Tr)` from raw trajectory points: builds the
/// candidate list and runs Algorithm 3.
pub fn min_point_match_distance(
    q_loc: &Point,
    q_activities: &ActivitySet,
    points: &[TrajectoryPoint],
) -> Option<f64> {
    let qmask = QueryMask::new(q_activities);
    let cp = candidate_points(q_loc, &qmask, points);
    dmpm_from_sorted(&qmask, &cp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsq_types::ActivitySet;

    fn qmask(ids: &[u32]) -> QueryMask {
        QueryMask::new(&ActivitySet::from_raw(ids.iter().copied()))
    }

    fn cp(dist: f64, mask: u32) -> CandidatePoint {
        CandidatePoint { dist, mask }
    }

    /// The worked example of the paper's Table II: query activities
    /// {a,b,c,d}, seven candidate points in ascending distance order.
    /// The algorithm must report 30 and stop before processing p7.
    #[test]
    fn paper_table_ii() {
        let qm = qmask(&[0, 1, 2, 3]); // a=bit0, b=bit1, c=bit2, d=bit3
        let points = vec![
            cp(10.0, 0b0001), // p1 {a}
            cp(11.0, 0b0110), // p2 {b,c}
            cp(13.0, 0b0011), // p3 {a,b}
            cp(15.0, 0b1000), // p4 {d}
            cp(17.0, 0b1100), // p5 {c,d}
            cp(26.0, 0b0111), // p6 {a,b,c}
            cp(31.0, 0b1111), // p7 {a,b,c,d}
        ];
        // Intermediate checks following the table rows.
        let mut t = IncrementalCover::new(&qm);
        for p in &points[..4] {
            t.add_point(*p);
        }
        // After p4: Dmpm = 36 ({a}:10 + {b,c}:11 + {d}:15).
        assert_eq!(t.full_cover_cost(), Some(36.0));
        t.add_point(points[4]);
        // After p5: {a,b}:13? No — {a}:10 ∪ {b,c}:11 ∪ ... best is
        // {a,b}=13 + {c,d}=17 = 30.
        assert_eq!(t.full_cover_cost(), Some(30.0));

        // Full algorithm: early termination fires at p7 (31 > 30).
        assert_eq!(dmpm_from_sorted(&qm, &points), Some(30.0));
    }

    #[test]
    fn single_activity_takes_nearest_covering_point() {
        let qm = qmask(&[5]);
        let points = vec![cp(4.0, 1), cp(9.0, 1)];
        assert_eq!(dmpm_from_sorted(&qm, &points), Some(4.0));
    }

    #[test]
    fn no_cover_returns_none() {
        let qm = qmask(&[0, 1]);
        // Only activity bit 0 ever appears.
        let points = vec![cp(1.0, 0b01), cp(2.0, 0b01)];
        assert_eq!(dmpm_from_sorted(&qm, &points), None);
        assert_eq!(dmpm_from_sorted(&qm, &[]), None);
    }

    #[test]
    fn one_point_covering_all_beats_combination() {
        let qm = qmask(&[0, 1]);
        let points = vec![cp(3.0, 0b01), cp(4.0, 0b10), cp(5.0, 0b11)];
        // {p1,p2} costs 7, single p3 costs 5.
        assert_eq!(dmpm_from_sorted(&qm, &points), Some(5.0));
    }

    #[test]
    fn early_termination_does_not_skip_better_combination() {
        let qm = qmask(&[0, 1]);
        // First full cover appears at cost 10 (single point), then a
        // cheaper combination is NOT possible afterwards because all
        // later points are farther. Termination triggers at p with
        // dist 11 and returns 10.
        let points = vec![cp(10.0, 0b11), cp(11.0, 0b01), cp(12.0, 0b10)];
        assert_eq!(dmpm_from_sorted(&qm, &points), Some(10.0));
    }

    #[test]
    fn cover_mask_maps_positions() {
        let acts = ActivitySet::from_raw([10, 20, 30]);
        let qm = QueryMask::new(&acts);
        assert_eq!(qm.cover_mask(&ActivitySet::from_raw([20])), 0b010);
        assert_eq!(qm.cover_mask(&ActivitySet::from_raw([10, 30])), 0b101);
        assert_eq!(qm.cover_mask(&ActivitySet::from_raw([99])), 0);
        assert_eq!(qm.full_mask(), 0b111);
        assert_eq!(qm.len(), 3);
    }

    #[test]
    fn candidate_points_filters_and_sorts() {
        use atsq_types::{Point, TrajectoryPoint};
        let qm = qmask(&[1, 2]);
        let pts = vec![
            TrajectoryPoint::new(Point::new(5.0, 0.0), ActivitySet::from_raw([1])),
            TrajectoryPoint::new(Point::new(1.0, 0.0), ActivitySet::from_raw([2])),
            TrajectoryPoint::new(Point::new(0.5, 0.0), ActivitySet::from_raw([7])),
        ];
        let cp = candidate_points(&Point::new(0.0, 0.0), &qm, &pts);
        assert_eq!(cp.len(), 2);
        assert_eq!(cp[0].dist, 1.0);
        assert_eq!(cp[0].mask, 0b10);
        assert_eq!(cp[1].dist, 5.0);
    }

    #[test]
    fn min_point_match_distance_end_to_end() {
        use atsq_types::{Point, TrajectoryPoint};
        let q = Point::new(0.0, 0.0);
        let qa = ActivitySet::from_raw([1, 2]);
        let pts = vec![
            TrajectoryPoint::new(Point::new(3.0, 0.0), ActivitySet::from_raw([1])),
            TrajectoryPoint::new(Point::new(0.0, 4.0), ActivitySet::from_raw([2])),
        ];
        assert_eq!(min_point_match_distance(&q, &qa, &pts), Some(7.0));
        let nocover = vec![TrajectoryPoint::new(
            Point::new(1.0, 0.0),
            ActivitySet::from_raw([1]),
        )];
        assert_eq!(min_point_match_distance(&q, &qa, &nocover), None);
    }

    #[test]
    fn incremental_cover_matches_batch() {
        let qm = qmask(&[0, 1, 2]);
        let points = vec![
            cp(2.0, 0b001),
            cp(3.0, 0b010),
            cp(4.0, 0b100),
            cp(5.0, 0b111),
        ];
        let batch = dmpm_from_sorted(&qm, &points);
        let mut inc = IncrementalCover::new(&qm);
        // Add in reverse order (as Algorithm 4's window growth does).
        for p in points.iter().rev() {
            inc.add_point(*p);
        }
        assert_eq!(inc.full_cover_cost(), batch);
        assert_eq!(batch, Some(5.0));
    }

    #[test]
    fn clear_resets_table() {
        let qm = qmask(&[0]);
        let mut t = IncrementalCover::new(&qm);
        t.add_point(cp(1.0, 1));
        assert_eq!(t.full_cover_cost(), Some(1.0));
        t.clear();
        assert_eq!(t.full_cover_cost(), None);
    }

    #[test]
    #[should_panic(expected = "at least one activity")]
    fn empty_query_mask_panics() {
        let _ = QueryMask::new(&ActivitySet::new());
    }
}
