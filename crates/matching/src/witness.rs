//! Witness extraction: not just the match *distance* but the match
//! itself — the point sets `Tr.MPM(q)` / `Tr.MM(Q)` / `Tr.MOM(Q)` of
//! Definitions 4–7.
//!
//! Applications need the witnesses (the venues to actually visit), not
//! only the score that ranked the trajectory. The engines rank with
//! the score-only kernels (cheaper); callers then extract witnesses
//! for the handful of reported trajectories via this module.

use crate::point_match::QueryMask;
use atsq_types::{Query, TrajectoryPoint};

/// The minimum point match of one query point: the matched trajectory
/// point indexes (ascending) and the point-match distance.
#[derive(Debug, Clone, PartialEq)]
pub struct PointMatchWitness {
    /// Indexes into the trajectory's point list.
    pub points: Vec<u32>,
    /// `Dmpm(q, Tr)` realised by those points.
    pub distance: f64,
}

/// Subset-DP table that tracks realising point sets alongside costs.
struct WitnessTable {
    cost: Vec<f64>,
    witness: Vec<Vec<u32>>,
    full: usize,
}

impl WitnessTable {
    fn new(full_mask: u32) -> Self {
        let size = full_mask as usize + 1;
        WitnessTable {
            cost: vec![f64::INFINITY; size],
            witness: vec![Vec::new(); size],
            full: full_mask as usize,
        }
    }

    fn add_point(&mut self, id: u32, dist: f64, mask: u32) {
        let ks = mask as usize;
        if ks == 0 {
            return;
        }
        for s in 0..self.cost.len() {
            if self.cost[s].is_finite() {
                let key = s | ks;
                if key != s {
                    let combined = self.cost[s] + dist;
                    if combined < self.cost[key] {
                        self.cost[key] = combined;
                        let mut w = self.witness[s].clone();
                        w.push(id);
                        self.witness[key] = w;
                    }
                }
            }
        }
        if dist < self.cost[ks] {
            self.cost[ks] = dist;
            self.witness[ks] = vec![id];
        }
    }

    fn result(&self) -> Option<PointMatchWitness> {
        let c = self.cost[self.full];
        c.is_finite().then(|| {
            let mut points = self.witness[self.full].clone();
            points.sort_unstable();
            points.dedup();
            PointMatchWitness {
                points,
                distance: c,
            }
        })
    }
}

/// Minimum point match with witness (Definition 4), over an explicit
/// `(index, distance, activity)` view of the candidate points.
fn dmpm_witness_over(
    qmask: &QueryMask,
    candidates: &[(u32, f64, u32)], // (point index, distance, mask)
) -> Option<PointMatchWitness> {
    let mut table = WitnessTable::new(qmask.full_mask());
    let mut sorted: Vec<&(u32, f64, u32)> = candidates.iter().collect();
    sorted.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    for &&(id, dist, mask) in &sorted {
        if let Some(w) = table.result() {
            if w.distance <= dist {
                return Some(w);
            }
        }
        table.add_point(id, dist, mask);
    }
    table.result()
}

/// `Tr.MPM(q)` — the minimum point match of one query point, with the
/// realising trajectory-point indexes.
pub fn min_point_match_witness(
    q_loc: &atsq_types::Point,
    q_activities: &atsq_types::ActivitySet,
    points: &[TrajectoryPoint],
) -> Option<PointMatchWitness> {
    let qmask = QueryMask::new(q_activities);
    let candidates: Vec<(u32, f64, u32)> = points
        .iter()
        .enumerate()
        .filter_map(|(i, p)| {
            let mask = qmask.cover_mask(&p.activities);
            (mask != 0).then(|| (i as u32, q_loc.dist(&p.loc), mask))
        })
        .collect();
    dmpm_witness_over(&qmask, &candidates)
}

/// `Tr.MM(Q)` — the minimum match (Definition 6, via Lemma 1): one
/// witness per query point. `None` when the trajectory is no match.
pub fn min_match_witness(
    query: &Query,
    points: &[TrajectoryPoint],
) -> Option<Vec<PointMatchWitness>> {
    query
        .points
        .iter()
        .map(|q| min_point_match_witness(&q.loc, &q.activities, points))
        .collect()
}

/// `Tr.MOM(Q)` — the minimum order-sensitive match (Definition 7):
/// per-query-point witnesses whose indexes respect the query order.
///
/// Runs the Eq. (1) dynamic program with an argmin trace, then
/// re-derives each window's witness. Use only on trajectories already
/// known to be results — it is costlier than the score-only kernel.
pub fn min_order_match_witness(
    query: &Query,
    points: &[TrajectoryPoint],
) -> Option<Vec<PointMatchWitness>> {
    let m = query.points.len();
    let n = points.len();
    if m == 0 || n == 0 {
        return None;
    }

    // G values plus the argmin k for each (i, j).
    let mut g = vec![vec![f64::INFINITY; n + 1]; m + 1];
    let mut arg = vec![vec![0usize; n + 1]; m + 1];
    g[0].fill(0.0);

    let per_query: Vec<(QueryMask, Vec<u32>, Vec<f64>)> = query
        .points
        .iter()
        .map(|q| {
            let qm = QueryMask::new(&q.activities);
            let masks = points
                .iter()
                .map(|p| qm.cover_mask(&p.activities))
                .collect();
            let dists = points.iter().map(|p| q.loc.dist(&p.loc)).collect();
            (qm, masks, dists)
        })
        .collect();

    for i in 1..=m {
        let (qm, masks, dists) = &per_query[i - 1];
        for j in 1..=n {
            let mut table = WitnessTable::new(qm.full_mask());
            for k in (1..=j).rev() {
                if g[i - 1][k].is_infinite() {
                    break;
                }
                table.add_point(k as u32 - 1, dists[k - 1], masks[k - 1]);
                if table.cost[table.full].is_finite() {
                    let total = g[i - 1][k] + table.cost[table.full];
                    if total < g[i][j] {
                        g[i][j] = total;
                        arg[i][j] = k;
                    }
                }
            }
        }
    }

    if g[m][n].is_infinite() {
        return None;
    }

    // Backtrace: recover (k_i, j_i) windows right-to-left, then
    // recompute each window's witness.
    let mut witnesses = vec![
        PointMatchWitness {
            points: Vec::new(),
            distance: 0.0
        };
        m
    ];
    let mut j = n;
    for i in (1..=m).rev() {
        // Find the column where row i attains its final value: g[i][·]
        // is non-increasing, so walk left while the value persists to
        // report the tightest window.
        let mut jj = j;
        while jj > 1 && g[i][jj - 1] <= g[i][j] {
            jj -= 1;
        }
        let k = arg[i][jj];
        debug_assert!(k >= 1, "argmin missing for realised value");
        let (qm, masks, dists) = &per_query[i - 1];
        let candidates: Vec<(u32, f64, u32)> = (k..=jj)
            .filter(|&p| masks[p - 1] != 0)
            .map(|p| (p as u32 - 1, dists[p - 1], masks[p - 1]))
            .collect();
        let w = dmpm_witness_over(qm, &candidates).expect("window realised a finite DP value");
        witnesses[i - 1] = w;
        j = k;
    }
    Some(witnesses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::match_distance::min_match_distance;
    use crate::order_match::min_order_match_distance;
    use atsq_types::{ActivitySet, Point, QueryPoint};

    fn tp(x: f64, acts: &[u32]) -> TrajectoryPoint {
        TrajectoryPoint::new(
            Point::new(x, 0.0),
            ActivitySet::from_raw(acts.iter().copied()),
        )
    }

    fn qp(x: f64, acts: &[u32]) -> QueryPoint {
        QueryPoint::new(
            Point::new(x, 0.0),
            ActivitySet::from_raw(acts.iter().copied()),
        )
    }

    #[test]
    fn point_match_witness_matches_distance_kernel() {
        let pts = vec![tp(1.0, &[1]), tp(2.0, &[2]), tp(5.0, &[1, 2])];
        let q = Point::new(0.0, 0.0);
        let acts = ActivitySet::from_raw([1, 2]);
        let w = min_point_match_witness(&q, &acts, &pts).unwrap();
        assert_eq!(w.distance, 3.0);
        assert_eq!(w.points, vec![0, 1]);
        // Witness activities actually cover the query.
        let mut union = ActivitySet::new();
        for &i in &w.points {
            union.extend_from(&pts[i as usize].activities);
        }
        assert!(acts.is_subset_of(&union));
    }

    #[test]
    fn witness_prefers_single_covering_point_when_cheaper() {
        let pts = vec![tp(4.0, &[1]), tp(4.0, &[2]), tp(3.0, &[1, 2])];
        let w =
            min_point_match_witness(&Point::new(0.0, 0.0), &ActivitySet::from_raw([1, 2]), &pts)
                .unwrap();
        assert_eq!(w.points, vec![2]);
        assert_eq!(w.distance, 3.0);
    }

    #[test]
    fn match_witness_agrees_with_dmm() {
        let pts = vec![tp(0.0, &[1]), tp(3.0, &[2]), tp(7.0, &[3])];
        let query = Query::new(vec![qp(0.0, &[1]), qp(5.0, &[2, 3])]).unwrap();
        let ws = min_match_witness(&query, &pts).unwrap();
        let total: f64 = ws.iter().map(|w| w.distance).sum();
        assert_eq!(Some(total), min_match_distance(&query, &pts));
        assert_eq!(ws[0].points, vec![0]);
        assert_eq!(ws[1].points, vec![1, 2]);
    }

    #[test]
    fn order_witness_respects_order_and_distance() {
        let pts = vec![tp(0.0, &[2]), tp(9.0, &[1]), tp(10.0, &[2])];
        let query = Query::new(vec![qp(8.0, &[1]), qp(0.5, &[2])]).unwrap();
        let ws = min_order_match_witness(&query, &pts).unwrap();
        let total: f64 = ws.iter().map(|w| w.distance).sum();
        let exact = min_order_match_distance(&query, &pts, f64::INFINITY).unwrap();
        assert!((total - exact).abs() < 1e-9, "witness {total} vs {exact}");
        // Order constraint: max index of witness i ≤ min index of i+1.
        for pair in ws.windows(2) {
            let max_prev = *pair[0].points.iter().max().unwrap();
            let min_next = *pair[1].points.iter().min().unwrap();
            assert!(max_prev <= min_next, "order violated: {ws:?}");
        }
        // The ordered assignment must use p3 (index 2) for q2.
        assert_eq!(ws[1].points, vec![2]);
    }

    #[test]
    fn order_witness_none_when_no_ordered_match() {
        let pts = vec![tp(1.0, &[2]), tp(2.0, &[1])];
        let query = Query::new(vec![qp(0.0, &[1]), qp(0.0, &[2])]).unwrap();
        assert!(min_order_match_witness(&query, &pts).is_none());
        assert!(min_match_witness(&query, &pts).is_some());
    }

    #[test]
    fn empty_inputs_yield_none() {
        let query = Query::new(vec![qp(0.0, &[1])]).unwrap();
        assert!(min_match_witness(&query, &[]).is_none());
        assert!(min_order_match_witness(&query, &[]).is_none());
    }
}
