//! Property tests: the optimised kernels must agree with the
//! brute-force oracles on arbitrary small inputs, and the lower-bound
//! lemmas of the paper must hold universally.

use atsq_matching::brute::{brute_dmm, brute_dmom, brute_dmpm};
use atsq_matching::{
    best_match_distance, min_match_distance, min_order_match_distance,
    point_match::min_point_match_distance,
};
use atsq_types::{ActivitySet, Point, Query, QueryPoint, TrajectoryPoint};
use proptest::prelude::*;

const ACT_UNIVERSE: u32 = 6;

fn arb_activity_set(max_len: usize) -> impl Strategy<Value = ActivitySet> {
    prop::collection::vec(0..ACT_UNIVERSE, 1..=max_len).prop_map(ActivitySet::from_raw)
}

fn arb_point() -> impl Strategy<Value = Point> {
    (-50.0f64..50.0, -50.0f64..50.0).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_traj_point() -> impl Strategy<Value = TrajectoryPoint> {
    (arb_point(), arb_activity_set(3)).prop_map(|(loc, acts)| TrajectoryPoint::new(loc, acts))
}

fn arb_trajectory(max_points: usize) -> impl Strategy<Value = Vec<TrajectoryPoint>> {
    prop::collection::vec(arb_traj_point(), 0..=max_points)
}

fn arb_query(max_points: usize) -> impl Strategy<Value = Query> {
    prop::collection::vec(
        (arb_point(), arb_activity_set(3)).prop_map(|(loc, acts)| QueryPoint::new(loc, acts)),
        1..=max_points,
    )
    .prop_map(|pts| Query::new(pts).expect("generated query points are non-empty"))
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Algorithm 3 equals the exponential oracle.
    #[test]
    fn dmpm_matches_brute(
        tr in arb_trajectory(10),
        q_loc in arb_point(),
        q_acts in arb_activity_set(4),
    ) {
        let fast = min_point_match_distance(&q_loc, &q_acts, &tr);
        let slow = brute_dmpm(&q_loc, &q_acts, &tr);
        match (fast, slow) {
            (Some(a), Some(b)) => prop_assert!(close(a, b), "fast {a} vs brute {b}"),
            (None, None) => {}
            other => prop_assert!(false, "disagreement: {other:?}"),
        }
    }

    /// Lemma 1 composition equals the oracle.
    #[test]
    fn dmm_matches_brute(tr in arb_trajectory(8), query in arb_query(3)) {
        let fast = min_match_distance(&query, &tr);
        let slow = brute_dmm(&query, &tr);
        match (fast, slow) {
            (Some(a), Some(b)) => prop_assert!(close(a, b)),
            (None, None) => {}
            other => prop_assert!(false, "disagreement: {other:?}"),
        }
    }

    /// Algorithm 4 equals the exponential order-sensitive oracle.
    #[test]
    fn dmom_matches_brute(tr in arb_trajectory(7), query in arb_query(3)) {
        let fast = min_order_match_distance(&query, &tr, f64::INFINITY);
        let slow = brute_dmom(&query, &tr);
        match (fast, slow) {
            (Some(a), Some(b)) => prop_assert!(close(a, b), "fast {a} vs brute {b}"),
            (None, None) => {}
            other => prop_assert!(false, "disagreement: {other:?}"),
        }
    }

    /// Lemma 2: Dbm ≤ Dmm whenever the trajectory matches.
    #[test]
    fn dbm_lower_bounds_dmm(tr in arb_trajectory(8), query in arb_query(3)) {
        if let Some(dmm) = min_match_distance(&query, &tr) {
            let dbm = best_match_distance(&query, &tr);
            prop_assert!(dbm <= dmm + 1e-9, "dbm {dbm} > dmm {dmm}");
        }
    }

    /// Lemma 3: Dmm ≤ Dmom whenever the ordered match exists.
    #[test]
    fn dmm_lower_bounds_dmom(tr in arb_trajectory(8), query in arb_query(3)) {
        if let Some(dmom) = min_order_match_distance(&query, &tr, f64::INFINITY) {
            let dmm = min_match_distance(&query, &tr)
                .expect("an ordered match implies an unordered match");
            prop_assert!(dmm <= dmom + 1e-9, "dmm {dmm} > dmom {dmom}");
        }
    }

    /// The Dkmom early exit never changes an answer that would have
    /// qualified: if the exact Dmom is ≤ the threshold, the pruned call
    /// must return it unchanged.
    #[test]
    fn early_exit_is_safe(
        tr in arb_trajectory(7),
        query in arb_query(3),
        threshold in 0.0f64..500.0,
    ) {
        let exact = min_order_match_distance(&query, &tr, f64::INFINITY);
        let pruned = min_order_match_distance(&query, &tr, threshold);
        match (exact, pruned) {
            (Some(e), Some(p)) => prop_assert!(close(e, p)),
            (Some(e), None) => prop_assert!(e > threshold, "pruned a qualifying value {e} ≤ {threshold}"),
            (None, Some(_)) => prop_assert!(false, "pruned call invented a match"),
            (None, None) => {}
        }
    }

    /// Dmpm is monotone under point removal: dropping trajectory points
    /// can only keep or worsen (increase) the distance.
    #[test]
    fn dmpm_monotone_in_points(
        tr in arb_trajectory(10),
        q_loc in arb_point(),
        q_acts in arb_activity_set(3),
        keep in prop::collection::vec(any::<bool>(), 10),
    ) {
        let full = min_point_match_distance(&q_loc, &q_acts, &tr);
        let sub: Vec<TrajectoryPoint> = tr
            .iter()
            .zip(keep.iter().chain(std::iter::repeat(&true)))
            .filter(|(_, &k)| k)
            .map(|(p, _)| p.clone())
            .collect();
        let partial = min_point_match_distance(&q_loc, &q_acts, &sub);
        match (full, partial) {
            (Some(f), Some(p)) => prop_assert!(f <= p + 1e-9),
            (None, Some(_)) => prop_assert!(false, "subset matched but superset did not"),
            _ => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Witness extraction realises exactly the kernel's distances, and
    /// the witness sets genuinely cover the query activities.
    #[test]
    fn match_witness_realises_dmm(tr in arb_trajectory(8), query in arb_query(3)) {
        use atsq_matching::witness::min_match_witness;
        let dmm = min_match_distance(&query, &tr);
        let ws = min_match_witness(&query, &tr);
        match (dmm, ws) {
            (Some(d), Some(ws)) => {
                let total: f64 = ws.iter().map(|w| w.distance).sum();
                prop_assert!(close(d, total));
                for (q, w) in query.points.iter().zip(&ws) {
                    let mut union = ActivitySet::new();
                    for &i in &w.points {
                        union.extend_from(&tr[i as usize].activities);
                    }
                    prop_assert!(q.activities.is_subset_of(&union));
                }
            }
            (None, None) => {}
            other => prop_assert!(false, "witness/kernel disagree: {other:?}"),
        }
    }

    /// Ordered witness extraction realises Dmom and respects order.
    #[test]
    fn order_witness_realises_dmom(tr in arb_trajectory(7), query in arb_query(3)) {
        use atsq_matching::witness::min_order_match_witness;
        let dmom = min_order_match_distance(&query, &tr, f64::INFINITY);
        let ws = min_order_match_witness(&query, &tr);
        match (dmom, ws) {
            (Some(d), Some(ws)) => {
                let total: f64 = ws.iter().map(|w| w.distance).sum();
                prop_assert!(close(d, total), "kernel {d} vs witness {total}");
                for pair in ws.windows(2) {
                    let max_prev = pair[0].points.iter().max().copied().unwrap_or(0);
                    let min_next = pair[1].points.iter().min().copied().unwrap_or(u32::MAX);
                    prop_assert!(max_prev <= min_next, "order violated");
                }
                for (q, w) in query.points.iter().zip(&ws) {
                    let mut union = ActivitySet::new();
                    for &i in &w.points {
                        union.extend_from(&tr[i as usize].activities);
                    }
                    prop_assert!(q.activities.is_subset_of(&union));
                }
            }
            (None, None) => {}
            other => prop_assert!(false, "witness/kernel disagree: {other:?}"),
        }
    }
}
