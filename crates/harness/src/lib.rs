//! Test/example harness crate.
//!
//! Hosts the repository-level `tests/` (integration and property tests
//! spanning crates) and `examples/` binaries via explicit target paths
//! in its manifest. The library itself only provides small shared
//! helpers for those targets.

use atsq_types::{ActivitySet, Point, QueryPoint, TrajectoryPoint};

/// Builds a trajectory point at `(x, y)` with raw activity ids.
pub fn tp(x: f64, y: f64, acts: &[u32]) -> TrajectoryPoint {
    TrajectoryPoint::new(
        Point::new(x, y),
        ActivitySet::from_raw(acts.iter().copied()),
    )
}

/// Builds a query point at `(x, y)` with raw activity ids.
pub fn qp(x: f64, y: f64, acts: &[u32]) -> QueryPoint {
    QueryPoint::new(
        Point::new(x, y),
        ActivitySet::from_raw(acts.iter().copied()),
    )
}
