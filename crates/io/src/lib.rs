//! Dataset persistence and check-in import.
//!
//! * [`text`] — a line-oriented snapshot format for [`Dataset`]s:
//!   human-inspectable, diff-friendly, dependency-free, loss-free for
//!   everything the query engines consume (vocabulary with counts,
//!   point coordinates, activity sets).
//! * [`checkins`] — an importer for raw check-in logs in the shape the
//!   paper crawls from Foursquare: one CSV row per check-in with user,
//!   WGS-84 coordinates, timestamp and activity tags. Rows are grouped
//!   by user, ordered chronologically and projected onto a local
//!   kilometre plane, yielding an activity-trajectory [`Dataset`].
//! * [`tips`] — the same importer for logs whose fifth column is a
//!   free-text tip instead of pre-extracted tags; activities are mined
//!   with `atsq-text` (tokenize → stopwords → stem → phrases), exactly
//!   the pipeline the paper applies to Foursquare tips.
//! * [`extractor`] — snapshots for fitted activity extractors, so the
//!   mined vocabulary survives process restarts and ad-hoc query text
//!   keeps mapping onto the same activity ids.
//!
//! [`Dataset`]: atsq_types::Dataset

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod checkins;
pub mod extractor;
pub mod text;
pub mod tips;

pub use checkins::{import_checkins, CheckinRecord};
pub use extractor::{read_extractor, write_extractor};
pub use text::{read_dataset, write_dataset};
pub use tips::{import_checkin_tips, parse_tip_row, TipRecord};
