//! Persistence for fitted activity extractors.
//!
//! The extractor is corpus-level state (mined phrases, pruned
//! vocabulary): re-fitting it on every process start means re-reading
//! the whole tip log. This module snapshots a fitted
//! [`ActivityExtractor`] in the same dependency-free, line-oriented
//! style as the dataset snapshot:
//!
//! ```text
//! atsq-extractor v1
//! C <min_activity_count> <max_activities_per_tip> <phrase_min_count> <phrase_cohesion>
//! S <extra stopword>          (repeated)
//! P <first> <second>          (repeated; promoted phrase pairs)
//! V <count> <tag>             (repeated; vocabulary with frequencies)
//! ```
//!
//! Tags never contain whitespace (the tokenizer guarantees it), so the
//! format needs no quoting.

use atsq_text::{ActivityExtractor, ExtractorConfig, PhraseModel};
use atsq_types::{Error, Result};
use std::io::{BufRead, Write};

const MAGIC: &str = "atsq-extractor v1";

/// Writes a fitted extractor.
pub fn write_extractor<W: Write>(ex: &ActivityExtractor, mut out: W) -> std::io::Result<()> {
    writeln!(out, "{MAGIC}")?;
    let c = ex.config();
    writeln!(
        out,
        "C {} {} {} {:?}",
        c.min_activity_count, c.max_activities_per_tip, c.phrase_min_count, c.phrase_cohesion
    )?;
    for w in &c.extra_stopwords {
        writeln!(out, "S {w}")?;
    }
    let mut pairs: Vec<(&str, &str)> = ex.phrases().pairs().collect();
    pairs.sort_unstable();
    for (a, b) in pairs {
        writeln!(out, "P {a} {b}")?;
    }
    for (tag, count) in ex.vocabulary() {
        writeln!(out, "V {count} {tag}")?;
    }
    Ok(())
}

/// Reads an extractor snapshot written by [`write_extractor`].
pub fn read_extractor<R: BufRead>(input: R) -> Result<ActivityExtractor> {
    let mut lines = input.lines().enumerate();
    let bad = |line: usize, msg: &str| Error::InvalidDataset(format!("line {}: {msg}", line + 1));

    let (_, first) = lines
        .next()
        .ok_or_else(|| Error::InvalidDataset("empty extractor snapshot".into()))?;
    let first = first.map_err(|e| Error::InvalidDataset(e.to_string()))?;
    if first.trim() != MAGIC {
        return Err(Error::InvalidDataset(format!(
            "bad magic line {first:?}, expected {MAGIC:?}"
        )));
    }

    let mut config: Option<ExtractorConfig> = None;
    let mut extra = Vec::new();
    let mut pairs = Vec::new();
    let mut vocab = Vec::new();

    for (ln, line) in lines {
        let line = line.map_err(|e| Error::InvalidDataset(e.to_string()))?;
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (kind, rest) = line
            .split_once(' ')
            .ok_or_else(|| bad(ln, "record needs a payload"))?;
        match kind {
            "C" => {
                let mut f = rest.split_whitespace();
                let mut next = |name: &str| {
                    f.next()
                        .ok_or_else(|| bad(ln, &format!("C line missing {name}")))
                };
                let min_activity_count = next("min_activity_count")?
                    .parse()
                    .map_err(|_| bad(ln, "invalid min_activity_count"))?;
                let max_activities_per_tip = next("max_activities_per_tip")?
                    .parse()
                    .map_err(|_| bad(ln, "invalid max_activities_per_tip"))?;
                let phrase_min_count = next("phrase_min_count")?
                    .parse()
                    .map_err(|_| bad(ln, "invalid phrase_min_count"))?;
                let phrase_cohesion: f64 = next("phrase_cohesion")?
                    .parse()
                    .map_err(|_| bad(ln, "invalid phrase_cohesion"))?;
                if config.is_some() {
                    return Err(bad(ln, "duplicate C line"));
                }
                config = Some(ExtractorConfig {
                    min_activity_count,
                    max_activities_per_tip,
                    phrase_min_count,
                    phrase_cohesion,
                    extra_stopwords: Vec::new(),
                });
            }
            "S" => extra.push(rest.trim().to_string()),
            "P" => {
                let (a, b) = rest
                    .split_once(' ')
                    .ok_or_else(|| bad(ln, "P line needs two tokens"))?;
                pairs.push((a.trim().to_string(), b.trim().to_string()));
            }
            "V" => {
                let (count, tag) = rest
                    .split_once(' ')
                    .ok_or_else(|| bad(ln, "V line needs `V <count> <tag>`"))?;
                let count: usize = count.parse().map_err(|_| bad(ln, "invalid count"))?;
                let tag = tag.trim();
                if tag.is_empty() {
                    return Err(bad(ln, "empty tag"));
                }
                vocab.push((tag.to_string(), count));
            }
            other => return Err(bad(ln, &format!("unknown record kind `{other}`"))),
        }
    }

    let mut config = config.ok_or_else(|| Error::InvalidDataset("missing C line".into()))?;
    config.extra_stopwords = extra;
    Ok(ActivityExtractor::from_parts(
        config,
        PhraseModel::from_pairs(pairs),
        vocab,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn fitted() -> ActivityExtractor {
        let corpus = [
            "great espresso at the coffee shop",
            "coffee shop with quiet corners and espresso",
            "espresso before hiking",
            "hiking the ridge trail",
            "hiking again, longer trail",
        ];
        ActivityExtractor::fit(
            corpus.iter().copied(),
            &ExtractorConfig {
                min_activity_count: 2,
                phrase_min_count: 2,
                phrase_cohesion: 2.0,
                extra_stopwords: vec!["ridge".into()],
                ..ExtractorConfig::default()
            },
        )
    }

    #[test]
    fn roundtrip_preserves_behaviour() {
        let ex = fitted();
        let mut buf = Vec::new();
        write_extractor(&ex, &mut buf).unwrap();
        let back = read_extractor(BufReader::new(&buf[..])).unwrap();

        assert_eq!(back.vocabulary(), ex.vocabulary());
        assert_eq!(back.phrases().len(), ex.phrases().len());
        for tip in [
            "an espresso at a coffee shop",
            "hiking the ridge",
            "quantum seminar",
            "",
        ] {
            assert_eq!(back.extract(tip), ex.extract(tip), "{tip:?}");
        }
    }

    #[test]
    fn roundtrip_is_byte_stable() {
        let ex = fitted();
        let mut a = Vec::new();
        write_extractor(&ex, &mut a).unwrap();
        let back = read_extractor(BufReader::new(&a[..])).unwrap();
        let mut b = Vec::new();
        write_extractor(&back, &mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_snapshots() {
        for (text, needle) in [
            ("", "empty"),
            ("wrong magic\n", "bad magic"),
            ("atsq-extractor v1\nV nope tag\n", "invalid count"),
            ("atsq-extractor v1\nC 1 2\n", "missing"),
            ("atsq-extractor v1\nX who knows\n", "unknown record"),
            ("atsq-extractor v1\nV 3 \n", "V line needs"),
        ] {
            let err = read_extractor(BufReader::new(text.as_bytes()))
                .expect_err(&format!("{text:?} must fail"));
            assert!(
                err.to_string().contains(needle),
                "{text:?} -> {err} (wanted {needle})"
            );
        }
        // Missing C line entirely.
        let err = read_extractor(BufReader::new(&b"atsq-extractor v1\nV 3 tag\n"[..])).unwrap_err();
        assert!(err.to_string().contains("missing C line"), "{err}");
    }

    #[test]
    fn extra_stopwords_survive() {
        let ex = fitted();
        let mut buf = Vec::new();
        write_extractor(&ex, &mut buf).unwrap();
        let back = read_extractor(BufReader::new(&buf[..])).unwrap();
        assert_eq!(back.config().extra_stopwords, vec!["ridge".to_string()]);
        assert!(back.extract("ridge").is_empty());
    }
}
