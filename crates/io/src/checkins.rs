//! Import of raw check-in logs (the Foursquare shape of §VII-A).
//!
//! Input is CSV-like text, one check-in per row:
//!
//! ```text
//! user_id,latitude,longitude,unix_timestamp,tag1;tag2;...
//! ```
//!
//! The importer groups rows by user, orders each user's check-ins
//! chronologically ("we put the records belonging to the same user in
//! the chronological order to form the trajectory of this user"),
//! projects WGS-84 coordinates onto a kilometre plane anchored at the
//! data centroid, interns every tag as an activity, and finishes the
//! dataset with the §IV frequency ranking.

use atsq_types::{
    geo::GeoPoint, ActivitySet, Dataset, DatasetBuilder, Error, Result, TrajectoryPoint,
};
use std::collections::BTreeMap;
use std::io::BufRead;

/// One parsed check-in row.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckinRecord {
    /// User identifier (verbatim string from the log).
    pub user: String,
    /// WGS-84 latitude in degrees.
    pub lat: f64,
    /// WGS-84 longitude in degrees.
    pub lon: f64,
    /// Check-in time (any monotone integer clock).
    pub timestamp: i64,
    /// Activity tags (may be empty).
    pub tags: Vec<String>,
}

/// Parses one CSV row. Exposed for streaming callers.
pub fn parse_row(line: &str, line_no: usize) -> Result<CheckinRecord> {
    let bad = |msg: &str| Error::InvalidDataset(format!("check-in line {line_no}: {msg}"));
    let mut cols = line.split(',');
    let user = cols.next().ok_or_else(|| bad("missing user"))?.trim();
    if user.is_empty() {
        return Err(bad("empty user id"));
    }
    let lat: f64 = cols
        .next()
        .ok_or_else(|| bad("missing latitude"))?
        .trim()
        .parse()
        .map_err(|_| bad("invalid latitude"))?;
    let lon: f64 = cols
        .next()
        .ok_or_else(|| bad("missing longitude"))?
        .trim()
        .parse()
        .map_err(|_| bad("invalid longitude"))?;
    if !(-90.0..=90.0).contains(&lat) || !(-180.0..=180.0).contains(&lon) {
        return Err(bad("coordinates out of range"));
    }
    let timestamp: i64 = cols
        .next()
        .ok_or_else(|| bad("missing timestamp"))?
        .trim()
        .parse()
        .map_err(|_| bad("invalid timestamp"))?;
    let tags = cols
        .next()
        .map(|t| {
            t.split(';')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_owned)
                .collect()
        })
        .unwrap_or_default();
    Ok(CheckinRecord {
        user: user.to_owned(),
        lat,
        lon,
        timestamp,
        tags,
    })
}

/// Imports a full check-in log into a [`Dataset`].
///
/// Rows starting with `#` or a non-numeric second column (a header)
/// are skipped. Users with fewer than `min_checkins` rows are dropped
/// (single check-ins carry no trajectory information).
pub fn import_checkins<R: BufRead>(input: R, min_checkins: usize) -> Result<Dataset> {
    let mut by_user: BTreeMap<String, Vec<CheckinRecord>> = BTreeMap::new();
    for (i, line) in input.lines().enumerate() {
        let line = line.map_err(|e| Error::InvalidDataset(e.to_string()))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if i == 0 {
            // Header detection: second column not parseable as f64.
            let looks_like_header = trimmed
                .split(',')
                .nth(1)
                .is_none_or(|c| c.trim().parse::<f64>().is_err());
            if looks_like_header {
                continue;
            }
        }
        let rec = parse_row(trimmed, i + 1)?;
        by_user.entry(rec.user.clone()).or_default().push(rec);
    }
    assemble(by_user, min_checkins)
}

/// Groups parsed records into chronological per-user trajectories,
/// projects them onto the centroid-anchored kilometre plane, interns
/// the tags and finishes the dataset. Shared by the tag importer above
/// and the tip importer in [`crate::tips`].
pub(crate) fn assemble(
    mut by_user: BTreeMap<String, Vec<CheckinRecord>>,
    min_checkins: usize,
) -> Result<Dataset> {
    // Projection origin: centroid of all check-ins.
    let mut lat_sum = 0.0;
    let mut lon_sum = 0.0;
    let mut count = 0usize;
    for recs in by_user.values() {
        for r in recs {
            lat_sum += r.lat;
            lon_sum += r.lon;
            count += 1;
        }
    }
    if count == 0 {
        return DatasetBuilder::new().finish();
    }
    let origin = GeoPoint::new(lat_sum / count as f64, lon_sum / count as f64);

    let mut builder = DatasetBuilder::new();
    for recs in by_user.values_mut() {
        if recs.len() < min_checkins {
            continue;
        }
        recs.sort_by_key(|r| r.timestamp);
        let points: Vec<TrajectoryPoint> = recs
            .iter()
            .map(|r| {
                let acts: Vec<_> = r.tags.iter().map(|t| builder.observe_activity(t)).collect();
                TrajectoryPoint::new(
                    GeoPoint::new(r.lat, r.lon).project(&origin),
                    ActivitySet::from_ids(acts),
                )
            })
            .collect();
        builder.push_trajectory(points);
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOG: &str = "\
user,lat,lon,time,tags
# a comment
alice,34.05,-118.25,100,coffee;art
bob,34.06,-118.24,50,food
alice,34.06,-118.20,200,hike
bob,34.02,-118.30,60,food;coffee
carol,34.00,-118.22,10,art
";

    #[test]
    fn imports_grouped_sorted_trajectories() {
        let d = import_checkins(LOG.as_bytes(), 2).unwrap();
        // carol has one check-in -> dropped.
        assert_eq!(d.len(), 2);
        // alice's trajectory is chronological: t=100 then t=200.
        let alice = &d.trajectories()[0];
        assert_eq!(alice.points.len(), 2);
        assert!(alice.points[0].loc.x < alice.points[1].loc.x); // west -> east
                                                                // Tags are interned and frequency-ranked: coffee (2) and food
                                                                // (2) outrank art (1) and hike (1).
        let v = d.vocabulary();
        assert!(v.get("coffee").unwrap().0 <= 1);
        assert!(v.get("food").unwrap().0 <= 1);
        assert!(v.get("hike").unwrap().0 >= 2);
    }

    #[test]
    fn projection_distances_are_city_scale() {
        let d = import_checkins(LOG.as_bytes(), 2).unwrap();
        // 0.05 degrees of longitude at 34°N ≈ 4.6 km.
        let alice = &d.trajectories()[0];
        let dist = alice.points[0].loc.dist(&alice.points[1].loc);
        assert!((3.0..7.0).contains(&dist), "unexpected distance {dist}");
    }

    #[test]
    fn min_checkins_zero_keeps_everyone() {
        let d = import_checkins(LOG.as_bytes(), 0).unwrap();
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn rejects_malformed_rows() {
        // A non-numeric latitude on the first line is indistinguishable
        // from a header and is skipped; from the second line on it is
        // an error.
        assert!(import_checkins("u,1.0,1.0,5,x\nalice,not_a_lat,1.0,5,x\n".as_bytes(), 1).is_err());
        assert!(import_checkins("alice,95.0,1.0,5,x\n".as_bytes(), 1).is_err());
        assert!(import_checkins("alice,1.0\n".as_bytes(), 1).is_err());
        assert!(import_checkins(",1.0,1.0,5,x\n".as_bytes(), 1).is_err());
    }

    #[test]
    fn empty_input_yields_empty_dataset() {
        let d = import_checkins("".as_bytes(), 2).unwrap();
        assert!(d.is_empty());
        let d = import_checkins("user,lat,lon,time,tags\n".as_bytes(), 2).unwrap();
        assert!(d.is_empty());
    }

    #[test]
    fn tagless_checkins_keep_empty_activity_sets() {
        let log = "u,34.0,-118.0,1,\nu,34.1,-118.1,2,coffee\n";
        let d = import_checkins(log.as_bytes(), 2).unwrap();
        assert_eq!(d.len(), 1);
        assert!(d.trajectories()[0].points[0].activities.is_empty());
        assert_eq!(d.trajectories()[0].points[1].activities.len(), 1);
    }

    #[test]
    fn parse_row_roundtrip_fields() {
        let r = parse_row("dave,1.5,-2.5,42,a;b; c", 1).unwrap();
        assert_eq!(r.user, "dave");
        assert_eq!(r.timestamp, 42);
        assert_eq!(r.tags, vec!["a", "b", "c"]);
    }
}
