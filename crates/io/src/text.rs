//! The `atsq v1` text snapshot format.
//!
//! ```text
//! atsq v1
//! A <count> <name>          # one per vocabulary entry, in id order
//! T                          # starts a trajectory
//! P <x> <y> [id,id,...]      # one per point, ids ascending or empty
//! ```
//!
//! Activity ids are implicit in the `A` line order, so the format
//! round-trips the frequency ranking exactly. Coordinates use `{:?}`
//! floating-point formatting, which is shortest-exact — reloading
//! reproduces bit-identical values.

use atsq_types::{ActivityId, ActivitySet, Dataset, Error, Point, Result, TrajectoryPoint};
use std::io::{BufRead, Write};

const MAGIC: &str = "atsq v1";

/// Serialises a dataset to the text snapshot format.
pub fn write_dataset<W: Write>(dataset: &Dataset, mut out: W) -> std::io::Result<()> {
    writeln!(out, "{MAGIC}")?;
    let vocab = dataset.vocabulary();
    for i in 0..vocab.len() as u32 {
        let id = ActivityId(i);
        writeln!(
            out,
            "A {} {}",
            vocab.count(id),
            vocab.name(id).expect("dense vocabulary ids")
        )?;
    }
    for tr in dataset.trajectories() {
        writeln!(out, "T")?;
        for p in &tr.points {
            write!(out, "P {:?} {:?} ", p.loc.x, p.loc.y)?;
            let mut first = true;
            for a in p.activities.iter() {
                if !first {
                    write!(out, ",")?;
                }
                write!(out, "{}", a.0)?;
                first = false;
            }
            writeln!(out)?;
        }
    }
    Ok(())
}

/// Parses a dataset from the text snapshot format.
pub fn read_dataset<R: BufRead>(input: R) -> Result<Dataset> {
    let mut lines = input.lines().enumerate();
    let bad = |line: usize, msg: &str| Error::InvalidDataset(format!("line {}: {msg}", line + 1));

    let (_, first) = lines
        .next()
        .ok_or_else(|| Error::InvalidDataset("empty input".into()))?;
    let first = first.map_err(|e| Error::InvalidDataset(e.to_string()))?;
    if first.trim() != MAGIC {
        return Err(Error::InvalidDataset(format!(
            "bad magic line {first:?}, expected {MAGIC:?}"
        )));
    }

    let mut builder = atsq_types::DatasetBuilder::new().without_frequency_ranking();
    let mut current: Option<Vec<TrajectoryPoint>> = None;
    let mut vocab_len = 0u32;

    for (ln, line) in lines {
        let line = line.map_err(|e| Error::InvalidDataset(e.to_string()))?;
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line.as_bytes()[0] {
            b'A' => {
                if current.is_some() {
                    return Err(bad(ln, "vocabulary entry after trajectories began"));
                }
                let rest = line[1..].trim_start();
                let (count_str, name) = rest
                    .split_once(' ')
                    .ok_or_else(|| bad(ln, "A line needs `A <count> <name>`"))?;
                let count: u64 = count_str
                    .parse()
                    .map_err(|_| bad(ln, "invalid activity count"))?;
                let id = builder.vocabulary_mut().intern(name);
                if id.0 != vocab_len {
                    return Err(bad(ln, "duplicate activity name"));
                }
                builder.vocabulary_mut().add_count(id, count);
                vocab_len += 1;
            }
            b'T' => {
                if let Some(points) = current.take() {
                    builder.push_trajectory(points);
                }
                current = Some(Vec::new());
            }
            b'P' => {
                let points = current
                    .as_mut()
                    .ok_or_else(|| bad(ln, "P line before any T line"))?;
                let mut parts = line[1..].split_whitespace();
                let x: f64 = parts
                    .next()
                    .ok_or_else(|| bad(ln, "missing x"))?
                    .parse()
                    .map_err(|_| bad(ln, "invalid x"))?;
                let y: f64 = parts
                    .next()
                    .ok_or_else(|| bad(ln, "missing y"))?
                    .parse()
                    .map_err(|_| bad(ln, "invalid y"))?;
                let acts = match parts.next() {
                    None | Some("") => ActivitySet::new(),
                    Some(list) => {
                        let ids: std::result::Result<Vec<u32>, _> =
                            list.split(',').map(str::parse).collect();
                        let ids = ids.map_err(|_| bad(ln, "invalid activity id"))?;
                        for &i in &ids {
                            if i >= vocab_len {
                                return Err(bad(ln, "activity id out of range"));
                            }
                        }
                        ActivitySet::from_raw(ids)
                    }
                };
                points.push(TrajectoryPoint::new(Point::new(x, y), acts));
            }
            _ => return Err(bad(ln, "unknown record type")),
        }
    }
    if let Some(points) = current.take() {
        builder.push_trajectory(points);
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsq_datagen::{generate, CityConfig};

    fn roundtrip(d: &Dataset) -> Dataset {
        let mut buf = Vec::new();
        write_dataset(d, &mut buf).unwrap();
        read_dataset(buf.as_slice()).unwrap()
    }

    #[test]
    fn roundtrip_generated_dataset() {
        let d = generate(&CityConfig::tiny(42)).unwrap();
        let d2 = roundtrip(&d);
        assert_eq!(d.len(), d2.len());
        assert_eq!(d.vocabulary().len(), d2.vocabulary().len());
        for (a, b) in d.trajectories().iter().zip(d2.trajectories()) {
            assert_eq!(a, b, "trajectory drifted through the snapshot");
        }
        // Vocabulary names and counts survive.
        for i in 0..d.vocabulary().len() as u32 {
            let id = ActivityId(i);
            assert_eq!(d.vocabulary().name(id), d2.vocabulary().name(id));
            assert_eq!(d.vocabulary().count(id), d2.vocabulary().count(id));
        }
    }

    #[test]
    fn roundtrip_preserves_exact_coordinates() {
        let d = generate(&CityConfig::tiny(7)).unwrap();
        let d2 = roundtrip(&d);
        for (a, b) in d.trajectories().iter().zip(d2.trajectories()) {
            for (pa, pb) in a.points.iter().zip(&b.points) {
                assert!(pa.loc.x == pb.loc.x && pa.loc.y == pb.loc.y);
            }
        }
    }

    #[test]
    fn empty_dataset_roundtrips() {
        let d = atsq_types::DatasetBuilder::new().finish().unwrap();
        let d2 = roundtrip(&d);
        assert!(d2.is_empty());
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(read_dataset("nonsense\n".as_bytes()).is_err());
        assert!(read_dataset("".as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_range_activity() {
        let text = "atsq v1\nA 1 coffee\nT\nP 0.0 0.0 5\n";
        assert!(read_dataset(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_point_before_trajectory() {
        let text = "atsq v1\nA 1 coffee\nP 0.0 0.0 0\n";
        assert!(read_dataset(text.as_bytes()).is_err());
    }

    #[test]
    fn tolerates_comments_blank_lines_and_empty_activities() {
        let text = "atsq v1\n# comment\nA 3 coffee\n\nT\nP 1.0 2.0 0\nP 3.0 4.0 \nT\nP 0.0 0.0 0\n";
        let d = read_dataset(text.as_bytes()).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.trajectories()[0].points.len(), 2);
        assert!(d.trajectories()[0].points[1].activities.is_empty());
    }
}
