//! Property test: the text snapshot round-trips arbitrary datasets
//! losslessly (structure, coordinates, vocabulary, counts).

use atsq_io::{read_dataset, write_dataset};
use atsq_types::{ActivitySet, Dataset, DatasetBuilder, Point, TrajectoryPoint};
use proptest::prelude::*;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    let point = (
        prop::num::f64::NORMAL,
        prop::num::f64::NORMAL,
        prop::collection::vec(0u32..15, 0..4),
    );
    let traj = prop::collection::vec(point, 0..5);
    prop::collection::vec(traj, 0..8).prop_map(|trs| {
        let mut b = DatasetBuilder::new().without_frequency_ranking();
        for i in 0..15 {
            b.observe_activity(&format!("tag-{i}"));
        }
        for tr in trs {
            let pts = tr
                .into_iter()
                .map(|(x, y, acts)| {
                    // Keep coordinates finite but otherwise arbitrary.
                    let x = if x.is_finite() { x } else { 0.0 };
                    let y = if y.is_finite() { y } else { 0.0 };
                    TrajectoryPoint::new(Point::new(x, y), ActivitySet::from_raw(acts))
                })
                .collect();
            b.push_trajectory(pts);
        }
        b.finish().expect("valid dataset")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn snapshot_roundtrip_is_lossless(d in arb_dataset()) {
        let mut buf = Vec::new();
        write_dataset(&d, &mut buf).expect("write");
        let d2 = read_dataset(buf.as_slice()).expect("read back");
        prop_assert_eq!(d.len(), d2.len());
        prop_assert_eq!(d.vocabulary().len(), d2.vocabulary().len());
        for (a, b) in d.trajectories().iter().zip(d2.trajectories()) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.points.len(), b.points.len());
            for (pa, pb) in a.points.iter().zip(&b.points) {
                // Bit-exact coordinates via {:?} shortest-round-trip.
                prop_assert!(pa.loc.x == pb.loc.x && pa.loc.y == pb.loc.y);
                prop_assert_eq!(&pa.activities, &pb.activities);
            }
        }
        // Double round-trip is a fixed point.
        let mut buf2 = Vec::new();
        write_dataset(&d2, &mut buf2).expect("write 2");
        prop_assert_eq!(buf, buf2);
    }
}
