//! Failure injection for the io crate: truncated snapshots, corrupt
//! fields, failing readers and malformed tip logs must all surface as
//! `Error` values with line context — never panics, never silently
//! partial datasets.

use atsq_datagen::{generate, CityConfig};
use atsq_io::{import_checkin_tips, import_checkins, read_dataset, write_dataset};
use atsq_text::ExtractorConfig;
use atsq_types::Error;
use std::io::{BufRead, BufReader, Read};

/// A reader that yields `n` bytes of the inner data and then errors —
/// a disk dying mid-restore.
struct DyingReader<'a> {
    data: &'a [u8],
    remaining: usize,
}

impl Read for DyingReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.remaining == 0 {
            return Err(std::io::Error::other("injected read failure"));
        }
        let n = buf.len().min(self.remaining).min(self.data.len());
        if n == 0 {
            return Ok(0);
        }
        buf[..n].copy_from_slice(&self.data[..n]);
        self.data = &self.data[n..];
        self.remaining -= n;
        Ok(n)
    }
}

fn snapshot_bytes() -> Vec<u8> {
    let dataset = generate(&CityConfig::tiny(42)).unwrap();
    let mut out = Vec::new();
    write_dataset(&dataset, &mut out).unwrap();
    out
}

#[test]
fn dying_reader_surfaces_as_error() {
    let bytes = snapshot_bytes();
    for keep in [0, 1, 64, bytes.len() / 2] {
        let reader = BufReader::new(DyingReader {
            data: &bytes,
            remaining: keep,
        });
        let err = read_dataset(reader).expect_err("must fail");
        assert!(
            matches!(err, Error::InvalidDataset(_)),
            "keep={keep}: {err}"
        );
    }
}

/// Clean truncation (no I/O error, the file just ends) either fails or
/// yields a dataset no larger than the original — and must never panic.
#[test]
fn truncated_snapshots_never_panic() {
    let bytes = snapshot_bytes();
    let full = read_dataset(BufReader::new(&bytes[..])).unwrap();
    // Cut at every line boundary and a few byte offsets.
    let mut cuts: Vec<usize> = bytes
        .iter()
        .enumerate()
        .filter(|(_, &b)| b == b'\n')
        .map(|(i, _)| i + 1)
        .collect();
    cuts.extend([0, 1, 7, bytes.len().saturating_sub(3)]);
    for cut in cuts {
        match read_dataset(BufReader::new(&bytes[..cut])) {
            Ok(d) => assert!(d.len() <= full.len(), "cut={cut}"),
            Err(e) => assert!(matches!(e, Error::InvalidDataset(_)), "cut={cut}: {e}"),
        }
    }
}

#[test]
fn corrupted_fields_are_rejected_with_line_context() {
    let bytes = snapshot_bytes();
    let text = String::from_utf8(bytes).unwrap();
    // Find a point line and mangle its x coordinate.
    let mangled: String = text
        .lines()
        .map(|l| {
            if l.starts_with("P ") {
                let mut parts: Vec<&str> = l.split_whitespace().collect();
                parts[1] = "not-a-number";
                parts.join(" ")
            } else {
                l.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    let err = read_dataset(BufReader::new(mangled.as_bytes())).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("line "), "no line context: {msg}");
    assert!(msg.contains("invalid x"), "wrong diagnosis: {msg}");
}

#[test]
fn unknown_record_kind_is_rejected() {
    let text = "atsq-dataset v1\nZ what is this\n";
    // The reader may call the kind letter out or reject the structure;
    // either way it must be an error, not a skip.
    let res = read_dataset(BufReader::new(text.as_bytes()));
    assert!(
        res.is_err(),
        "unknown record kinds must not be ignored: {res:?}"
    );
}

#[test]
fn checkin_import_propagates_reader_failures() {
    let log = b"alice,34.05,-118.25,100,coffee\nbob,34.0,-118.2,50,art\n";
    let reader = BufReader::new(DyingReader {
        data: log,
        remaining: 10,
    });
    assert!(import_checkins(reader, 0).is_err());

    let reader = BufReader::new(DyingReader {
        data: log,
        remaining: 10,
    });
    assert!(import_checkin_tips(reader, 0, &ExtractorConfig::default()).is_err());
}

#[test]
fn checkin_import_rejects_bad_rows_with_line_numbers() {
    let log = "alice,34.05,-118.25,100,coffee\nbob,91.0,-118.2,50,art\n";
    let err = import_checkins(BufReader::new(log.as_bytes()), 0).unwrap_err();
    assert!(err.to_string().contains("line 2"), "{err}");

    let log = "alice,34.05,-118.25,100,great tips\nbob,oops,-118.2,50,art\n";
    let err = import_checkin_tips(
        BufReader::new(log.as_bytes()),
        0,
        &ExtractorConfig::default(),
    )
    .unwrap_err();
    assert!(err.to_string().contains("line 2"), "{err}");
}

/// Restoring a snapshot written by us always succeeds, even after the
/// dataset went through append + requery cycles (no hidden state).
#[test]
fn roundtrip_after_appends() {
    let mut dataset = generate(&CityConfig::tiny(5)).unwrap();
    let extra = dataset.trajectories()[0].points.clone();
    dataset.append_trajectory(extra).unwrap();
    let mut out = Vec::new();
    write_dataset(&dataset, &mut out).unwrap();
    let back = read_dataset(BufReader::new(&out[..])).unwrap();
    assert_eq!(back.len(), dataset.len());
    let lines = BufReader::new(&out[..]).lines().count();
    assert!(lines > dataset.len());
}
