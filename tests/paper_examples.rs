//! Reproduction of the paper's worked examples: the Fig. 1 running
//! example (distance matrices, minimum matches, and the motivating
//! Dbm-vs-Dmm inversion), the Table II `Dmpm` trace, and the Table III
//! `Dmom` dynamic-program matrix.
//!
//! The paper gives distances as matrices rather than coordinates (the
//! matrices are not exactly realisable in the plane), so these tests
//! drive the distance kernels through their mask/distance interface —
//! `CandidatePoint` — which is precisely what the engines feed them.

use atsq_matching::point_match::{dmpm_from_sorted, CandidatePoint, IncrementalCover, QueryMask};
use atsq_types::ActivitySet;

/// Activities a..f as ids 0..5.
fn acts(ids: &[u32]) -> ActivitySet {
    ActivitySet::from_raw(ids.iter().copied())
}

/// Fig. 1 query: q1 {a,b}, q2 {c,d}, q3 {e}.
fn query_activities() -> [ActivitySet; 3] {
    [acts(&[0, 1]), acts(&[2, 3]), acts(&[4])]
}

/// Fig. 1 Tr1 point activities: p1,1 {d}, p1,2 {a,c}, p1,3 {b},
/// p1,4 {c}, p1,5 {d,e}.
fn tr1_activities() -> [ActivitySet; 5] {
    [
        acts(&[3]),
        acts(&[0, 2]),
        acts(&[1]),
        acts(&[2]),
        acts(&[3, 4]),
    ]
}

/// Fig. 1 Tr2 point activities: p2,1 {a}, p2,2 {b,c}, p2,3 {c,d},
/// p2,4 {e}, p2,5 {f}.
fn tr2_activities() -> [ActivitySet; 5] {
    [
        acts(&[0]),
        acts(&[1, 2]),
        acts(&[2, 3]),
        acts(&[4]),
        acts(&[5]),
    ]
}

/// Fig. 1 distance matrix for Tr1 (rows q1..q3, columns p1..p5).
const TR1_DIST: [[f64; 5]; 3] = [
    [2.0, 8.0, 16.0, 24.0, 32.0],
    [14.0, 6.0, 3.0, 11.0, 20.0],
    [33.0, 25.0, 17.0, 8.0, 1.0],
];

/// Fig. 1 distance matrix for Tr2.
const TR2_DIST: [[f64; 5]; 3] = [
    [6.0, 8.0, 17.0, 26.0, 31.0],
    [14.0, 13.0, 4.0, 13.0, 20.0],
    [32.0, 28.0, 16.0, 7.0, 3.0],
];

/// `Dmpm(qi, Tr)` from one matrix row and the point activity sets.
fn dmpm_row(q_acts: &ActivitySet, row: &[f64; 5], points: &[ActivitySet; 5]) -> Option<f64> {
    let qm = QueryMask::new(q_acts);
    let mut cp: Vec<CandidatePoint> = row
        .iter()
        .zip(points.iter())
        .filter_map(|(&dist, p)| {
            let mask = qm.cover_mask(p);
            (mask != 0).then_some(CandidatePoint { dist, mask })
        })
        .collect();
    cp.sort_by(|a, b| a.dist.partial_cmp(&b.dist).unwrap());
    dmpm_from_sorted(&qm, &cp)
}

#[test]
fn fig1_minimum_point_matches() {
    let q = query_activities();
    let tr1 = tr1_activities();
    let tr2 = tr2_activities();

    // Tr1: q1 -> {p1,2, p1,3} = 8 + 16 = 24; q2 -> {p1,1, p1,2} =
    // 14 + 6 = 20; q3 -> {p1,5} = 1 (as in §II's discussion).
    assert_eq!(dmpm_row(&q[0], &TR1_DIST[0], &tr1), Some(24.0));
    assert_eq!(dmpm_row(&q[1], &TR1_DIST[1], &tr1), Some(20.0));
    assert_eq!(dmpm_row(&q[2], &TR1_DIST[2], &tr1), Some(1.0));

    // Tr2: q1 -> {p2,1, p2,2} = 14; q2 -> {p2,3} = 4; q3 -> {p2,4} = 7.
    assert_eq!(dmpm_row(&q[0], &TR2_DIST[0], &tr2), Some(14.0));
    assert_eq!(dmpm_row(&q[1], &TR2_DIST[1], &tr2), Some(4.0));
    assert_eq!(dmpm_row(&q[2], &TR2_DIST[2], &tr2), Some(7.0));
}

#[test]
fn fig1_tr2_beats_tr1_on_dmm_but_loses_on_dbm() {
    let q = query_activities();
    let tr1 = tr1_activities();
    let tr2 = tr2_activities();

    // Dmm by Lemma 1.
    let dmm_tr1: f64 = (0..3)
        .map(|i| dmpm_row(&q[i], &TR1_DIST[i], &tr1).unwrap())
        .sum();
    let dmm_tr2: f64 = (0..3)
        .map(|i| dmpm_row(&q[i], &TR2_DIST[i], &tr2).unwrap())
        .sum();
    assert_eq!(dmm_tr1, 45.0);
    assert_eq!(dmm_tr2, 25.0);
    assert!(dmm_tr2 < dmm_tr1, "Tr2 must win under activity awareness");

    // Best match distance ignores activities: Tr1 wins geometrically,
    // which is exactly the paper's motivating failure of k-BCT.
    let dbm_tr1: f64 = TR1_DIST
        .iter()
        .map(|row| row.iter().cloned().fold(f64::INFINITY, f64::min))
        .sum();
    let dbm_tr2: f64 = TR2_DIST
        .iter()
        .map(|row| row.iter().cloned().fold(f64::INFINITY, f64::min))
        .sum();
    assert_eq!(dbm_tr1, 6.0);
    assert_eq!(dbm_tr2, 13.0);
    assert!(dbm_tr1 < dbm_tr2);

    // Lemma 2 holds on both.
    assert!(dbm_tr1 <= dmm_tr1);
    assert!(dbm_tr2 <= dmm_tr2);
}

/// Eq. (1) dynamic program over the matrix interface — the same
/// recurrence `atsq_matching::order_match` implements over planar
/// points, driven here by the paper's exact distances to reproduce
/// Table III.
#[allow(clippy::needless_range_loop)]
fn dmom_matrix(
    queries: &[ActivitySet],
    dist: &[[f64; 5]; 3],
    points: &[ActivitySet; 5],
) -> Vec<Vec<f64>> {
    let n = points.len();
    let mut g_prev = vec![0.0f64; n + 1];
    let mut table = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        let qm = QueryMask::new(q);
        let masks: Vec<u32> = points.iter().map(|p| qm.cover_mask(p)).collect();
        let mut g_curr = vec![f64::INFINITY; n + 1];
        for j in 1..=n {
            let mut cover = IncrementalCover::new(&qm);
            let mut best = f64::INFINITY;
            for k in (1..=j).rev() {
                if g_prev[k].is_infinite() {
                    break;
                }
                cover.add_point(CandidatePoint {
                    dist: dist[i][k - 1],
                    mask: masks[k - 1],
                });
                if let Some(d) = cover.full_cover_cost() {
                    best = best.min(g_prev[k] + d);
                }
            }
            g_curr[j] = best;
        }
        table.push(g_curr[1..].to_vec());
        g_prev = g_curr;
    }
    table
}

#[test]
fn table_iii_dmom_matrix() {
    let q = query_activities();
    let tr1 = tr1_activities();
    let g = dmom_matrix(&q, &TR1_DIST, &tr1);
    let inf = f64::INFINITY;
    assert_eq!(g[0], vec![inf, inf, 24.0, 24.0, 24.0]);
    assert_eq!(g[1], vec![inf, inf, inf, inf, 55.0]);
    assert_eq!(g[2], vec![inf, inf, inf, inf, 56.0]);
    // Dmom(Q, Tr1) = G(3, 5) = 56, strictly above Dmm = 45 (Lemma 3).
    assert!(g[2][4] > 45.0);
}

#[test]
fn table_iii_order_sensitive_match_for_tr2_equals_dmm() {
    // §VI-A: "Tr2.MOM(Q) is the same as Tr2.MM(Q)" — the minimum
    // matches already comply with the order.
    let q = query_activities();
    let tr2 = tr2_activities();
    let g = dmom_matrix(&q, &TR2_DIST, &tr2);
    assert_eq!(g[2][4], 25.0);
}

#[test]
fn table_ii_dmpm_trace() {
    // Replayed here at the integration level (the unit test inside
    // atsq-matching checks intermediate hash states too).
    let qm = QueryMask::new(&acts(&[0, 1, 2, 3]));
    let points = vec![
        CandidatePoint {
            dist: 10.0,
            mask: 0b0001,
        },
        CandidatePoint {
            dist: 11.0,
            mask: 0b0110,
        },
        CandidatePoint {
            dist: 13.0,
            mask: 0b0011,
        },
        CandidatePoint {
            dist: 15.0,
            mask: 0b1000,
        },
        CandidatePoint {
            dist: 17.0,
            mask: 0b1100,
        },
        CandidatePoint {
            dist: 26.0,
            mask: 0b0111,
        },
        CandidatePoint {
            dist: 31.0,
            mask: 0b1111,
        },
    ];
    assert_eq!(dmpm_from_sorted(&qm, &points), Some(30.0));
}
