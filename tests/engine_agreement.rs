//! Cross-engine agreement: all four engines (IL, RT, IRT, GAT) must
//! return identical top-k results for both ATSQ and OATSQ on arbitrary
//! generated workloads, and all must agree with a brute-force scan
//! that evaluates every trajectory with the distance kernels.

use atsq_core::{Engine, QueryEngine};
use atsq_datagen::{generate, generate_queries, CityConfig, QueryGenConfig};
use atsq_matching::min_match_distance;
use atsq_matching::order_match::min_order_match_distance;
use atsq_types::{rank_top_k, Dataset, Query, QueryResult};

/// Exhaustive oracle for ATSQ.
fn scan_atsq(dataset: &Dataset, query: &Query, k: usize) -> Vec<QueryResult> {
    let mut res = Vec::new();
    for tr in dataset.trajectories() {
        if let Some(d) = min_match_distance(query, &tr.points) {
            res.push(QueryResult::new(tr.id, d));
        }
    }
    rank_top_k(res, k)
}

/// Exhaustive oracle for OATSQ.
fn scan_oatsq(dataset: &Dataset, query: &Query, k: usize) -> Vec<QueryResult> {
    let mut res = Vec::new();
    for tr in dataset.trajectories() {
        if let Some(d) = min_order_match_distance(query, &tr.points, f64::INFINITY) {
            res.push(QueryResult::new(tr.id, d));
        }
    }
    rank_top_k(res, k)
}

/// Compares result lists with distance tolerance (engines may compute
/// identical sums in different float orders).
fn assert_results_eq(a: &[QueryResult], b: &[QueryResult], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: length mismatch\n{a:?}\n{b:?}");
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(
            x.trajectory, y.trajectory,
            "{ctx}: ranking mismatch\n{a:?}\n{b:?}"
        );
        assert!(
            (x.distance - y.distance).abs() < 1e-6,
            "{ctx}: distance mismatch {x:?} vs {y:?}"
        );
    }
}

fn check_city(city: CityConfig, seeds: &[u64]) {
    let dataset = generate(&city).unwrap();
    let engines = Engine::build_all(&dataset).unwrap();
    for &seed in seeds {
        for (qp, apq) in [(2usize, 2usize), (3, 1), (4, 3)] {
            let queries = generate_queries(
                &dataset,
                &QueryGenConfig {
                    query_points: qp,
                    acts_per_point: apq,
                    diameter_km: None,
                    common_acts_only: false,
                    seed,
                },
                3,
            );
            for (qi, q) in queries.iter().enumerate() {
                for k in [1usize, 5, 9] {
                    let want = scan_atsq(&dataset, q, k);
                    for e in &engines {
                        let got = e.atsq(&dataset, q, k);
                        assert_results_eq(
                            &got,
                            &want,
                            &format!("{} atsq seed={seed} q#{qi} k={k}", e.name()),
                        );
                    }
                    let want_o = scan_oatsq(&dataset, q, k);
                    for e in &engines {
                        let got = e.oatsq(&dataset, q, k);
                        assert_results_eq(
                            &got,
                            &want_o,
                            &format!("{} oatsq seed={seed} q#{qi} k={k}", e.name()),
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn engines_agree_tiny_city() {
    check_city(CityConfig::tiny(101), &[1, 2]);
}

#[test]
fn engines_agree_la_sample() {
    check_city(CityConfig::la_like(0.003), &[3]);
}

#[test]
fn engines_agree_ny_sample() {
    check_city(CityConfig::ny_like(0.002), &[4]);
}

#[test]
fn engines_agree_with_diameter_control() {
    let dataset = generate(&CityConfig::tiny(77)).unwrap();
    let engines = Engine::build_all(&dataset).unwrap();
    for diameter in [2.0, 8.0] {
        let queries = generate_queries(
            &dataset,
            &QueryGenConfig {
                query_points: 3,
                acts_per_point: 2,
                diameter_km: Some(diameter),
                common_acts_only: false,
                seed: 9,
            },
            3,
        );
        for q in &queries {
            let want = scan_atsq(&dataset, q, 5);
            for e in &engines {
                assert_results_eq(&e.atsq(&dataset, q, 5), &want, e.name());
            }
        }
    }
}

#[test]
fn top_k_is_prefix_of_top_k_plus_one() {
    let dataset = generate(&CityConfig::tiny(55)).unwrap();
    let engines = Engine::build_all(&dataset).unwrap();
    let queries = generate_queries(&dataset, &QueryGenConfig::default(), 3);
    for q in &queries {
        for e in &engines {
            let k5 = e.atsq(&dataset, q, 5);
            let k6 = e.atsq(&dataset, q, 6);
            assert!(k6.len() >= k5.len());
            assert_eq!(&k6[..k5.len()], &k5[..], "{} prefix property", e.name());
        }
    }
}

/// Range-query agreement: for any radius, all engines return exactly
/// the scan oracle's within-τ set, ascending, for both query types.
#[test]
fn range_queries_agree_with_oracle() {
    let dataset = generate(&CityConfig::tiny(202)).unwrap();
    let engines = Engine::build_all(&dataset).unwrap();
    let queries = generate_queries(&dataset, &QueryGenConfig::default(), 4);
    for q in &queries {
        // Pick radii from actual result distances to exercise both
        // empty and populous ranges.
        let all = scan_atsq(&dataset, q, usize::MAX);
        let radii: Vec<f64> = [0.0, 0.5, 2.0]
            .iter()
            .copied()
            .chain(all.get(2).map(|r| r.distance + 1e-9))
            .collect();
        for tau in radii {
            let want: Vec<QueryResult> =
                all.iter().filter(|r| r.distance <= tau).cloned().collect();
            for e in &engines {
                let got = e.atsq_range(&dataset, q, tau);
                assert_results_eq(&got, &want, &format!("{} atsq_range τ={tau}", e.name()));
            }
            let all_o = scan_oatsq(&dataset, q, usize::MAX);
            let want_o: Vec<QueryResult> = all_o
                .iter()
                .filter(|r| r.distance <= tau)
                .cloned()
                .collect();
            for e in &engines {
                let got = e.oatsq_range(&dataset, q, tau);
                assert_results_eq(&got, &want_o, &format!("{} oatsq_range τ={tau}", e.name()));
            }
        }
    }
}

/// Negative radius and radius-zero edge cases.
#[test]
fn range_query_edge_radii() {
    let dataset = generate(&CityConfig::tiny(203)).unwrap();
    let engines = Engine::build_all(&dataset).unwrap();
    let q = &generate_queries(&dataset, &QueryGenConfig::default(), 1)[0];
    for e in &engines {
        assert!(e.atsq_range(&dataset, q, -1.0).is_empty(), "{}", e.name());
        // τ = 0 returns only exact-location perfect matches (the
        // source trajectory qualifies when the query kept its venues'
        // own activities and locations).
        for r in e.atsq_range(&dataset, q, 0.0) {
            assert_eq!(r.distance, 0.0);
        }
    }
}
