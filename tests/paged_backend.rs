//! The paged APL backend must be a pure storage substitution: GAT over
//! pages returns byte-identical results to GAT in memory (and therefore
//! to every baseline engine), page traffic is actually measured, and
//! storage faults surface as errors — never as silently wrong results.

use atsq_core::{GatConfig, GatEngine, PagedAplConfig, PagedBacking, QueryEngine};
use atsq_datagen::{generate, generate_queries, CityConfig, QueryGenConfig};
use atsq_gat::{try_atsq, AplStorage, GatIndex, PagedApl};
use atsq_storage::{FaultInjectingStore, FaultPlan, MemPageStore, PageStore};
use atsq_types::Error;

fn paged_configs() -> Vec<PagedAplConfig> {
    vec![
        PagedAplConfig::default(),
        // Tiny pages and a tiny pool: every posting fetch churns.
        PagedAplConfig {
            page_size: 128,
            pool_frames: 2,
            backing: PagedBacking::Memory,
        },
        // Realistic pages, starved pool.
        PagedAplConfig {
            page_size: 1024,
            pool_frames: 1,
            backing: PagedBacking::Memory,
        },
    ]
}

#[test]
fn paged_gat_agrees_with_memory_gat() {
    let dataset = generate(&CityConfig::tiny(99)).unwrap();
    let mem = GatEngine::build(&dataset).unwrap();
    let queries = generate_queries(
        &dataset,
        &QueryGenConfig {
            query_points: 3,
            acts_per_point: 2,
            ..Default::default()
        },
        8,
    );
    for cfg in paged_configs() {
        let paged = GatEngine::build_paged(&dataset, GatConfig::default(), &cfg).unwrap();
        for (qi, q) in queries.iter().enumerate() {
            for k in [1, 5, 10] {
                assert_eq!(
                    paged.atsq(&dataset, q, k),
                    mem.atsq(&dataset, q, k),
                    "ATSQ diverged: cfg={cfg:?} query={qi} k={k}"
                );
                assert_eq!(
                    paged.oatsq(&dataset, q, k),
                    mem.oatsq(&dataset, q, k),
                    "OATSQ diverged: cfg={cfg:?} query={qi} k={k}"
                );
            }
            let tau = 30.0;
            assert_eq!(
                paged.atsq_range(&dataset, q, tau),
                mem.atsq_range(&dataset, q, tau),
                "range ATSQ diverged: cfg={cfg:?} query={qi}"
            );
        }
    }
}

#[test]
fn paged_gat_measures_page_traffic() {
    let dataset = generate(&CityConfig::tiny(7)).unwrap();
    let cfg = PagedAplConfig {
        page_size: 128,
        pool_frames: 1, // nothing stays resident between fetches
        backing: PagedBacking::Memory,
    };
    let engine = GatEngine::build_paged(&dataset, GatConfig::default(), &cfg).unwrap();
    let queries = generate_queries(&dataset, &QueryGenConfig::default(), 3);

    let before = engine.index().apl().pool_stats().expect("paged backend");
    assert_eq!(before.hits + before.misses, 0, "build must reset counters");

    let mut any = 0;
    for q in &queries {
        any += engine.atsq(&dataset, q, 5).len();
    }
    let after = engine.index().apl().pool_stats().expect("paged backend");
    if any > 0 {
        assert!(
            after.misses > 0,
            "a one-frame pool cannot serve postings without misses: {after:?}"
        );
    }
    // Simulated APL-read counter and measured pool accesses must agree
    // on the number of posting fetches: one pool access per record
    // chunk, at least one per APL read.
    let snapshot = engine.index().stats().snapshot();
    assert!(after.hits + after.misses >= snapshot.apl_reads);
}

#[test]
fn file_backed_gat_answers_queries() {
    let dir = std::env::temp_dir().join("atsq-paged-backend-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("apl.pages");
    let dataset = generate(&CityConfig::tiny(3)).unwrap();
    let cfg = PagedAplConfig {
        page_size: 512,
        pool_frames: 8,
        backing: PagedBacking::File(path.clone()),
    };
    let mem = GatEngine::build(&dataset).unwrap();
    let paged = GatEngine::build_paged(&dataset, GatConfig::default(), &cfg).unwrap();
    let queries = generate_queries(&dataset, &QueryGenConfig::default(), 4);
    for q in &queries {
        assert_eq!(paged.atsq(&dataset, q, 7), mem.atsq(&dataset, q, 7));
    }
    assert!(path.metadata().unwrap().len() > 0);
    // The cold HICL levels live in a sibling page file.
    let mut cold = path.clone().into_os_string();
    cold.push(".hicl");
    assert!(std::path::Path::new(&cold).exists());
    drop(paged);
    std::fs::remove_file(&path).unwrap();
    std::fs::remove_file(&cold).unwrap();
}

#[test]
fn storage_faults_surface_as_errors_not_results() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let dataset = generate(&CityConfig::tiny(11)).unwrap();
    let index = GatIndex::build(&dataset).unwrap();

    // A store that serves the build, then fails every read afterwards:
    // the arming switch stays off until the index is ready.
    let switch = Arc::new(AtomicBool::new(false));
    let store: Box<dyn PageStore> = Box::new(FaultInjectingStore::new(
        MemPageStore::new(256).unwrap(),
        FaultPlan {
            fail_reads_from: Some(0),
            arm_switch: Some(Arc::clone(&switch)),
            ..FaultPlan::default()
        },
    ));
    // One frame: at most one page can be served warm from the build.
    let paged = PagedApl::build_with_store(dataset.trajectories().iter(), store, 1).unwrap();
    let index = index.with_apl_storage(AplStorage::Paged(paged));
    switch.store(true, Ordering::Relaxed); // pull the plug

    let mem = GatEngine::build(&dataset).unwrap();
    let queries = generate_queries(&dataset, &QueryGenConfig::default(), 8);
    let mut saw_error = false;
    for q in &queries {
        match try_atsq(&index, &dataset, q, 5) {
            // Served entirely from the warm frame: must still be right.
            Ok(results) => assert_eq!(results, mem.atsq(&dataset, q, 5)),
            Err(Error::Storage(msg)) => {
                assert!(msg.contains("injected read fault"), "{msg}");
                saw_error = true;
            }
            Err(other) => panic!("unexpected error kind: {other:?}"),
        }
    }
    assert!(
        saw_error,
        "no query ever faulted a page — workload too weak"
    );
}

/// A store that serves reads whose payload has been silently replaced
/// by garbage *after* the checksum was verified — the nightmare case a
/// page checksum cannot catch (e.g. a bug between medium and decoder).
/// The record decoder must still refuse to produce postings.
#[derive(Debug)]
struct GarblingStore {
    inner: MemPageStore,
    garble_reads: bool,
}

impl PageStore for GarblingStore {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }
    fn page_count(&self) -> u64 {
        self.inner.page_count()
    }
    fn allocate(&mut self) -> atsq_storage::StorageResult<atsq_storage::PageId> {
        self.inner.allocate()
    }
    fn read(
        &mut self,
        id: atsq_storage::PageId,
        page: &mut atsq_storage::Page,
    ) -> atsq_storage::StorageResult<()> {
        self.inner.read(id, page)?;
        if self.garble_reads {
            for b in page.payload_mut() {
                *b = 0xFF;
            }
            page.seal(); // keep the checksum consistent: pure garbage data
        }
        Ok(())
    }
    fn write(
        &mut self,
        id: atsq_storage::PageId,
        page: &mut atsq_storage::Page,
    ) -> atsq_storage::StorageResult<()> {
        self.inner.write(id, page)
    }
    fn sync(&mut self) -> atsq_storage::StorageResult<()> {
        self.inner.sync()
    }
    fn io_counts(&self) -> (u64, u64) {
        self.inner.io_counts()
    }
}

#[test]
fn garbled_page_payload_is_detected_at_query_time() {
    let dataset = generate(&CityConfig::tiny(13)).unwrap();
    let index = GatIndex::build(&dataset).unwrap();

    let store: Box<dyn PageStore> = Box::new(GarblingStore {
        inner: MemPageStore::new(256).unwrap(),
        garble_reads: true, // writes are clean; every read decays
    });
    // pool_frames = 1 so queries always re-read through the garbler.
    let paged = PagedApl::build_with_store(dataset.trajectories().iter(), store, 1).unwrap();
    let index = index.with_apl_storage(AplStorage::Paged(paged));

    let queries = generate_queries(&dataset, &QueryGenConfig::default(), 5);
    let mut saw_error = false;
    for q in &queries {
        match try_atsq(&index, &dataset, q, 5) {
            Ok(results) => assert!(results.is_empty(), "results decoded from garbage"),
            Err(Error::Storage(_)) => saw_error = true,
            Err(other) => panic!("unexpected error kind: {other:?}"),
        }
    }
    assert!(
        saw_error,
        "no query ever touched the APL — workload too weak"
    );
}

#[test]
fn paged_gat_serves_concurrent_queries() {
    use atsq_core::batch::{run_batch, QueryKind};

    let dataset = generate(&CityConfig::tiny(31)).unwrap();
    let queries = generate_queries(
        &dataset,
        &QueryGenConfig {
            query_points: 3,
            acts_per_point: 2,
            ..Default::default()
        },
        16,
    );
    let mem = GatEngine::build(&dataset).unwrap();
    // A starved pool maximizes contention on the shared buffer frames.
    let paged = GatEngine::build_paged(
        &dataset,
        GatConfig::default(),
        &PagedAplConfig {
            page_size: 128,
            pool_frames: 2,
            backing: PagedBacking::Memory,
        },
    )
    .unwrap();

    let sequential = run_batch(&mem, &dataset, &queries, 7, QueryKind::Atsq, 1);
    let concurrent = run_batch(&paged, &dataset, &queries, 7, QueryKind::Atsq, 4);
    assert_eq!(sequential, concurrent);

    let sequential_o = run_batch(&mem, &dataset, &queries, 7, QueryKind::Oatsq, 1);
    let concurrent_o = run_batch(&paged, &dataset, &queries, 7, QueryKind::Oatsq, 4);
    assert_eq!(sequential_o, concurrent_o);

    // All page traffic from four threads is accounted for.
    let pool = paged.index().apl().pool_stats().unwrap();
    assert!(pool.hits + pool.misses > 0);
}

#[test]
fn cold_hicl_levels_are_paged_and_measured() {
    let dataset = generate(&CityConfig::tiny(43)).unwrap();
    // memory_level 2 of a level-6 grid: levels 3..=6 go to pages.
    let config = GatConfig {
        grid_level: 6,
        memory_level: 2,
        ..GatConfig::default()
    };
    let mem = GatEngine::build_with(&dataset, config).unwrap();
    let paged = GatEngine::build_paged(
        &dataset,
        config,
        &PagedAplConfig {
            page_size: 256,
            pool_frames: 2,
            backing: PagedBacking::Memory,
        },
    )
    .unwrap();
    let cold = paged.index().cold_hicl().expect("cold levels exist");
    assert_eq!(cold.first_level(), 3);
    assert!(cold.disk_bytes() > 0);
    let before = cold.pool_stats();
    assert_eq!(before.hits + before.misses, 0, "build resets counters");

    let queries = generate_queries(
        &dataset,
        &QueryGenConfig {
            query_points: 3,
            acts_per_point: 2,
            ..Default::default()
        },
        6,
    );
    for q in &queries {
        assert_eq!(paged.atsq(&dataset, q, 5), mem.atsq(&dataset, q, 5));
        assert_eq!(paged.oatsq(&dataset, q, 5), mem.oatsq(&dataset, q, 5));
    }
    let after = cold.pool_stats();
    assert!(
        after.hits + after.misses > 0,
        "the descent below level 2 must fetch cold cells: {after:?}"
    );
    // Measured cold fetches and the simulated counter agree in order:
    // every simulated cold read was served by at least one pool access
    // or by a directory miss (unoccupied cell, no record to fetch).
    let simulated = paged.index().stats().snapshot().hicl_cold_reads;
    assert!(simulated > 0);
}

#[test]
fn cold_hicl_absent_when_everything_is_hot() {
    let dataset = generate(&CityConfig::tiny(2)).unwrap();
    let config = GatConfig {
        grid_level: 4,
        memory_level: 4, // nothing cold
        ..GatConfig::default()
    };
    let paged = GatEngine::build_paged(&dataset, config, &PagedAplConfig::default()).unwrap();
    assert!(paged.index().cold_hicl().is_none());
}

#[test]
fn paged_cold_hicl_rejects_dynamic_inserts() {
    let dataset = generate(&CityConfig::tiny(6)).unwrap();
    let mut index =
        GatIndex::build_paged(&dataset, GatConfig::default(), &PagedAplConfig::default()).unwrap();
    let mut grown = dataset.clone();
    let points = grown.trajectories()[0].points.clone();
    let id = grown.append_trajectory(points).unwrap();
    let err = index.insert_trajectory(grown.trajectory(id)).unwrap_err();
    assert!(
        err.to_string().contains("rebuild"),
        "want the rebuild guidance, got: {err}"
    );
}
