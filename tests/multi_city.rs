//! Acceptance test for multi-city, multi-tenant serving: one server
//! hosting three cities under a memory budget that only fits two must
//! answer every city's queries exactly like a dedicated single-city
//! server, while evicting and reloading cold tenants observably.

use atsq_core::{Engine, Partition};
use atsq_datagen::{generate, generate_queries, CityConfig, QueryGenConfig};
use atsq_service::{CityWorkload, LoadgenConfig, Request, Server, Service, ServiceConfig};
use atsq_tenant::{CityId, CityRegistry, EngineFactory, LoadedCity, TenantState};
use atsq_types::{Dataset, Query};
use std::sync::Arc;

fn city(seed: u64) -> (Dataset, Vec<Query>) {
    let dataset = generate(&CityConfig::tiny(seed)).unwrap();
    let queries = generate_queries(
        &dataset,
        &QueryGenConfig {
            query_points: 3,
            acts_per_point: 2,
            ..QueryGenConfig::default()
        },
        8,
    );
    (dataset, queries)
}

fn factory(seed: u64) -> EngineFactory {
    Arc::new(move || {
        let dataset = generate(&CityConfig::tiny(seed)).map_err(|e| e.to_string())?;
        let (engine, _) =
            Engine::build_gat(&dataset, 1, Partition::Hash, None).map_err(|e| e.to_string())?;
        Ok(LoadedCity {
            dataset: Arc::new(dataset),
            engine: Arc::new(engine),
            loaded_from_snapshot: false,
        })
    })
}

/// Estimated resident bytes of one tiny city, measured by loading it
/// into a throwaway registry.
fn one_city_bytes() -> u64 {
    let probe = CityRegistry::new(CityId::new("probe").unwrap(), None);
    probe
        .add_city(CityId::new("probe").unwrap(), factory(41))
        .unwrap();
    drop(probe.resolve(&CityId::new("probe").unwrap()).unwrap());
    probe.cities()[0].resident_bytes
}

#[test]
fn three_cities_under_two_city_budget_serve_exactly_and_evict_observably() {
    const CITIES: [(&str, u64); 3] = [("tokyo", 41), ("kyoto", 42), ("nara", 43)];
    // A budget that holds two resident tiny cities but not three.
    let budget = one_city_bytes() * 5 / 2;

    let registry = CityRegistry::new(CityId::new("tokyo").unwrap(), Some(budget));
    for (name, seed) in CITIES {
        registry
            .add_city(CityId::new(name).unwrap(), factory(seed))
            .unwrap();
    }
    let service = Service::start_registry(
        Arc::new(registry),
        ServiceConfig {
            workers: 3,
            batch_size: 4,
            ..ServiceConfig::default()
        },
    );
    let handle = service.handle();
    let server = Server::bind(handle.clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();

    // Round-robin load across all three cities, verifying every
    // response against each city's own reference engine. With three
    // cities live and room for two, the cold city keeps cycling in.
    let workloads: Vec<CityWorkload> = CITIES
        .iter()
        .map(|(name, seed)| CityWorkload {
            city: Some((*name).to_owned()),
            dataset: generate(&CityConfig::tiny(*seed)).unwrap(),
        })
        .collect();
    let cfg = LoadgenConfig {
        concurrency: 3,
        requests: 90,
        pool: 6,
        k: 5,
        verify: true,
        ..LoadgenConfig::default()
    };
    let report = atsq_service::run_loadgen_cities(&addr, &workloads, &cfg).unwrap();
    assert_eq!(report.ok, 90, "{report}");
    assert_eq!(report.incorrect, 0, "{report}");

    // Every tenant served its third of the traffic.
    let infos = handle.cities();
    assert_eq!(infos.len(), 3);
    for info in &infos {
        assert!(
            info.queries >= 30,
            "{}: {} queries",
            info.city,
            info.queries
        );
    }

    // Per-city answers are byte-identical to a dedicated single-city
    // server hosting the same dataset.
    for (name, seed) in CITIES {
        let (dataset, queries) = city(seed);
        let dedicated = Service::build(dataset, ServiceConfig::default()).unwrap();
        for query in &queries {
            let request = Request::Atsq {
                query: query.clone(),
                k: 5,
            };
            let lease = handle.resolve_city(Some(name)).unwrap();
            let multi = handle
                .submit_leased(lease, request.clone(), None)
                .unwrap()
                .wait()
                .unwrap();
            let single = dedicated.handle().call(request).unwrap();
            assert_eq!(
                multi.results().unwrap(),
                single.results().unwrap(),
                "{name} diverged from its dedicated server"
            );
        }
        dedicated.shutdown();
    }

    // Unload-then-query reloads on demand, and the reload is visible
    // in the per-city load counter.
    let loads_before = handle
        .cities()
        .iter()
        .find(|i| i.city.as_str() == "kyoto")
        .unwrap()
        .loads;
    // The last reply's lease drops just after `wait` returns, so an
    // immediate unload can race a still-draining request.
    let mut unloaded = false;
    for _ in 0..100 {
        if handle.city_unload("kyoto").is_ok() {
            unloaded = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(unloaded, "kyoto never quiesced for unload");
    drop(handle.resolve_city(Some("kyoto")).unwrap());
    let kyoto = handle
        .cities()
        .into_iter()
        .find(|i| i.city.as_str() == "kyoto")
        .unwrap();
    assert_eq!(kyoto.state, TenantState::Ready);
    assert_eq!(
        kyoto.loads,
        loads_before + 1,
        "unload-then-query must reload"
    );

    // That cold load ran an eviction pass with nothing in flight, so
    // the accountant settles at no more than two resident tenants —
    // and either that pass or an earlier one had to evict somebody.
    // (During loadgen all cities are usually in flight, which rightly
    // blocks eviction, so only a quiescent load pins this down.)
    let infos = handle.cities();
    let ready = infos
        .iter()
        .filter(|i| i.state == TenantState::Ready)
        .count();
    assert!(ready <= 2, "budget for two left {ready} cities resident");
    let evictions: u64 = infos.iter().map(|i| i.evictions).sum();
    assert!(evictions >= 1, "no eviction under a two-city budget");

    // The whole tenant surface is scrapable.
    let page = handle.metrics_text();
    for family in [
        "atsq_city_state",
        "atsq_city_resident_bytes",
        "atsq_city_queries_total",
        "atsq_city_evictions_total",
    ] {
        assert!(page.contains(family), "metrics page lacks {family}");
    }

    server.stop();
    service.shutdown();
}
