//! Dynamic-update correctness: a GAT index grown with
//! `insert_trajectory` must answer exactly like an index rebuilt from
//! scratch over the extended dataset.

use atsq_datagen::{generate, generate_queries, CityConfig, QueryGenConfig};
use atsq_gat::{GatConfig, GatIndex};
use atsq_matching::min_match_distance;
use atsq_types::{rank_top_k, QueryResult};

fn config() -> GatConfig {
    GatConfig {
        grid_level: 6,
        memory_level: 4,
        ..GatConfig::default()
    }
}

#[test]
fn incremental_index_equals_rebuilt_index() {
    let full = generate(&CityConfig::tiny(123)).unwrap();
    let n = full.len();
    let half = n / 2;

    // Start from the first half, then append the rest one by one.
    let mut dataset = full.sample_prefix(half);
    let mut index = GatIndex::build_with(&dataset, config()).unwrap();
    for tr in &full.trajectories()[half..] {
        let id = dataset.append_trajectory(tr.points.clone()).unwrap();
        index.insert_trajectory(dataset.trajectory(id)).unwrap();
    }
    assert_eq!(dataset.len(), n);
    assert_eq!(index.tas().len(), n);

    // Note: `dataset` now differs from `full` only in activity counts
    // (append re-counts), not in geometry or activity sets, so query
    // results must be identical to a fresh build over `dataset`.
    let rebuilt = GatIndex::build_with(&dataset, config()).unwrap();
    let queries = generate_queries(&dataset, &QueryGenConfig::default(), 8);
    for q in &queries {
        assert_eq!(
            atsq_gat::atsq(&index, &dataset, q, 9),
            atsq_gat::atsq(&rebuilt, &dataset, q, 9),
            "incremental vs rebuilt diverged (ATSQ)"
        );
        assert_eq!(
            atsq_gat::oatsq(&index, &dataset, q, 9),
            atsq_gat::oatsq(&rebuilt, &dataset, q, 9),
            "incremental vs rebuilt diverged (OATSQ)"
        );
    }
}

#[test]
fn incremental_index_matches_scan_oracle() {
    let full = generate(&CityConfig::tiny(77)).unwrap();
    let mut dataset = full.sample_prefix(10);
    let mut index = GatIndex::build_with(&dataset, config()).unwrap();
    for tr in &full.trajectories()[10..30] {
        let id = dataset.append_trajectory(tr.points.clone()).unwrap();
        index.insert_trajectory(dataset.trajectory(id)).unwrap();
    }
    let queries = generate_queries(&dataset, &QueryGenConfig::default(), 5);
    for q in &queries {
        let got = atsq_gat::atsq(&index, &dataset, q, 7);
        let mut want = Vec::new();
        for tr in dataset.trajectories() {
            if let Some(d) = min_match_distance(q, &tr.points) {
                want.push(QueryResult::new(tr.id, d));
            }
        }
        assert_eq!(got, rank_top_k(want, 7));
    }
}

#[test]
fn append_rejects_unknown_activities() {
    let mut dataset = generate(&CityConfig::tiny(5)).unwrap();
    let bogus = atsq_types::TrajectoryPoint::new(
        atsq_types::Point::new(0.0, 0.0),
        atsq_types::ActivitySet::from_raw([999_999]),
    );
    assert!(dataset.append_trajectory(vec![bogus]).is_err());
}

#[test]
fn append_with_new_interned_activity() {
    let mut dataset = generate(&CityConfig::tiny(5)).unwrap();
    let fresh = dataset.vocabulary_mut().intern("brand-new-activity");
    let mut index = GatIndex::build_with(&dataset, config()).unwrap();
    // Rebuild is NOT needed for a new vocabulary entry: only the new
    // trajectory references it.
    let id = dataset
        .append_trajectory(vec![atsq_types::TrajectoryPoint::new(
            atsq_types::Point::new(5.0, 5.0),
            atsq_types::ActivitySet::from_ids([fresh]),
        )])
        .unwrap();
    index.insert_trajectory(dataset.trajectory(id)).unwrap();
    let q = atsq_types::Query::new(vec![atsq_types::QueryPoint::new(
        atsq_types::Point::new(5.0, 5.0),
        atsq_types::ActivitySet::from_ids([fresh]),
    )])
    .unwrap();
    let res = atsq_gat::atsq(&index, &dataset, &q, 3);
    assert_eq!(res.len(), 1);
    assert_eq!(res[0].trajectory, id);
    assert_eq!(res[0].distance, 0.0);
}

#[test]
fn out_of_region_appends_are_clamped_but_correct() {
    let full = generate(&CityConfig::tiny(9)).unwrap();
    let mut dataset = full.sample_prefix(20);
    let mut index = GatIndex::build_with(&dataset, config()).unwrap();
    // Append a trajectory far outside the original bounds.
    let a = dataset.trajectories()[0].points[0].activities.clone();
    let id = dataset
        .append_trajectory(vec![atsq_types::TrajectoryPoint::new(
            atsq_types::Point::new(10_000.0, 10_000.0),
            a.clone(),
        )])
        .unwrap();
    index.insert_trajectory(dataset.trajectory(id)).unwrap();
    // Queries near the outlier must still find it (clamped cells keep
    // the index correct, if less selective).
    let q = atsq_types::Query::new(vec![atsq_types::QueryPoint::new(
        atsq_types::Point::new(10_000.0, 10_000.0),
        a,
    )])
    .unwrap();
    let res = atsq_gat::atsq(&index, &dataset, &q, 1);
    assert_eq!(res[0].trajectory, id);
}
