//! Lock-order checker integration tests.
//!
//! The parking_lot shim records every held→acquired lock edge in a
//! global acquisition graph and panics *before blocking* when a new
//! edge closes a cycle (`shims/parking_lot/src/order.rs`). Two things
//! must hold:
//!
//! 1. a deliberately seeded inversion is caught, with both locks named
//!    in the panic message, and
//! 2. the real service path — serve over TCP, drive with the load
//!    generator, scrape metrics and the slow-query log — runs clean
//!    with the checker on.
//!
//! The checker is enabled in debug builds and whenever
//! `ATSQ_LOCK_ORDER=1` (CI runs this test with the variable set, so
//! release runs are covered too); tests no-op when it is off.

use atsq_datagen::{generate, CityConfig};
use atsq_service::{run_loadgen, LoadgenConfig, Server, Service, ServiceConfig};
use parking_lot::{checking_enabled, Mutex};
use std::sync::Arc;

/// Acquiring A→B on one thread and B→A on another must panic at the
/// second thread's inner acquisition, naming both locks, instead of
/// deadlocking.
#[test]
fn seeded_inversion_panics_with_both_lock_names() {
    if !checking_enabled() {
        eprintln!("lock-order checker disabled; skipping");
        return;
    }
    let outer = Arc::new(Mutex::new(0u32));
    let inner = Arc::new(Mutex::new(0u32));
    outer.set_name("inversion.outer");
    inner.set_name("inversion.inner");

    // Establish the legal order outer → inner.
    {
        let _o = outer.lock();
        let _i = inner.lock();
    }

    // Now close the cycle on a separate thread: inner → outer.
    let result = std::thread::Builder::new()
        .name("inverted-acquirer".into())
        .spawn({
            let outer = Arc::clone(&outer);
            let inner = Arc::clone(&inner);
            move || {
                let _i = inner.lock();
                let _o = outer.lock(); // must panic, not deadlock
            }
        })
        .expect("spawn")
        .join();

    let payload = result.expect_err("inversion must panic");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic payload is a string");
    assert!(
        msg.contains("lock-order inversion"),
        "unexpected panic message: {msg}"
    );
    assert!(
        msg.contains("inversion.outer") && msg.contains("inversion.inner"),
        "panic must name both locks: {msg}"
    );
}

/// The full service path holds no conflicting lock orders: serve a
/// dataset over TCP, hammer it with the closed-loop load generator,
/// then exercise the stats, Prometheus metrics and slow-query-log
/// surfaces — all with the checker recording every acquisition.
#[test]
fn service_path_is_inversion_free_under_checker() {
    if !checking_enabled() {
        eprintln!("lock-order checker disabled; skipping");
        return;
    }
    let dataset = generate(&CityConfig::tiny(41)).unwrap();
    let service = Service::build(
        dataset.clone(),
        ServiceConfig {
            workers: 3,
            batch_size: 8,
            cache_capacity: 32,
            slowlog_capacity: 16,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let server = Server::bind(service.handle(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();

    let report = run_loadgen(
        &addr,
        &dataset,
        &LoadgenConfig {
            concurrency: 4,
            requests: 120,
            pool: 12,
            k: 5,
            ..LoadgenConfig::default()
        },
    )
    .unwrap();
    assert_eq!(report.errors, 0, "{report}");
    assert!(report.ok > 0, "{report}");

    // The observability surfaces take the same locks from a scraper
    // thread — walk them all while workers are still alive.
    let handle = service.handle();
    let stats = handle.stats();
    assert!(stats.completed > 0);
    let metrics = handle.metrics_text();
    assert!(metrics.contains("atsq_"), "metrics surface: {metrics}");
    let _entries = handle.slowlog();

    server.stop();
    service.shutdown();
}
