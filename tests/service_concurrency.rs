//! Concurrency tests: many threads sharing one immutable index must
//! behave exactly like serial execution, and the service layer's
//! admission control (cache, deadlines, overflow) must be observable
//! end to end.

use atsq_core::{Engine, GatEngine, QueryEngine};
use atsq_datagen::{generate, generate_queries, CityConfig, QueryGenConfig};
use atsq_service::{Request, Response, Server, Service, ServiceConfig, SubmitError};
use atsq_types::{Dataset, Query, QueryResult};
use std::sync::Arc;
use std::time::Duration;

fn city(seed: u64) -> (Dataset, Vec<Query>) {
    let dataset = generate(&CityConfig::tiny(seed)).unwrap();
    let queries = generate_queries(
        &dataset,
        &QueryGenConfig {
            query_points: 3,
            acts_per_point: 2,
            ..QueryGenConfig::default()
        },
        12,
    );
    (dataset, queries)
}

/// N threads hammering one shared `Arc<Engine>` return results
/// identical to serial execution — for every engine, both query types.
#[test]
fn engines_agree_under_concurrency() {
    let (dataset, queries) = city(31);
    let dataset = Arc::new(dataset);
    for engine in Engine::build_all(&dataset).unwrap() {
        let engine = Arc::new(engine);
        let serial: Vec<(Vec<QueryResult>, Vec<QueryResult>)> = queries
            .iter()
            .map(|q| (engine.atsq(&dataset, q, 5), engine.oatsq(&dataset, q, 5)))
            .collect();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let engine = engine.clone();
                let dataset = dataset.clone();
                let queries = &queries;
                let serial = &serial;
                scope.spawn(move || {
                    // Different threads walk the workload from
                    // different offsets so interleavings vary.
                    for i in 0..queries.len() {
                        let j = (i + t) % queries.len();
                        let q = &queries[j];
                        assert_eq!(
                            engine.atsq(&dataset, q, 5),
                            serial[j].0,
                            "{} diverged under concurrency",
                            engine.name()
                        );
                        assert_eq!(
                            engine.oatsq(&dataset, q, 5),
                            serial[j].1,
                            "{} diverged under concurrency (ordered)",
                            engine.name()
                        );
                    }
                });
            }
        });
    }
}

/// The same property through the whole service stack: concurrent
/// submitters via the worker pool get byte-identical answers to the
/// direct engine, with the cache on.
#[test]
fn service_answers_match_direct_engine_under_load() {
    let (dataset, queries) = city(32);
    let service = Service::build(
        dataset,
        ServiceConfig {
            workers: 4,
            batch_size: 8,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let handle = service.handle();
    let expected: Vec<Vec<QueryResult>> = queries
        .iter()
        .map(|q| handle.engine().atsq(&handle.dataset(), q, 7))
        .collect();
    std::thread::scope(|scope| {
        for t in 0..8 {
            let handle = handle.clone();
            let queries = &queries;
            let expected = &expected;
            scope.spawn(move || {
                for rep in 0..15 {
                    let j = (t + rep) % queries.len();
                    let response = handle
                        .call(Request::Atsq {
                            query: queries[j].clone(),
                            k: 7,
                        })
                        .unwrap();
                    assert_eq!(response.results().unwrap(), expected[j].as_slice());
                }
            });
        }
    });
    let stats = handle.stats();
    assert_eq!(stats.completed, 120);
    assert!(stats.cache_hits > 0, "repeated queries never hit the cache");
    service.shutdown();
}

/// Cache hits, deadline expiry and queue-overflow rejection are all
/// reported faithfully by the service.
#[test]
fn service_admission_control_paths() {
    let (dataset, queries) = city(33);

    // Cache: same request twice — second comes back cached.
    let service = Service::build(
        dataset.clone(),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let handle = service.handle();
    let request = Request::Atsq {
        query: queries[0].clone(),
        k: 5,
    };
    assert!(!handle.call(request.clone()).unwrap().is_cached());
    assert!(handle.call(request.clone()).unwrap().is_cached());

    // Deadline: an already-expired deadline is answered Expired
    // without running the engine.
    let evals_before = handle.stats().engine.distance_evals;
    let response = handle
        .submit_with_deadline(request.clone(), Some(Duration::ZERO))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(response, Response::Expired);
    assert_eq!(handle.stats().engine.distance_evals, evals_before);
    assert_eq!(handle.stats().expired, 1);
    service.shutdown();

    // Overflow: no workers draining a capacity-2 queue — the third
    // submission is rejected, not queued.
    let service = Service::build(
        dataset,
        ServiceConfig {
            workers: 0,
            queue_capacity: 2,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let handle = service.handle();
    let _a = handle.submit(request.clone()).unwrap();
    let _b = handle.submit(request.clone()).unwrap();
    assert_eq!(handle.submit(request).unwrap_err(), SubmitError::QueueFull);
    assert_eq!(handle.stats().rejected, 1);
    service.shutdown();
}

/// The acceptance scenario for the sharded engine: a server built with
/// `shards > 1` driven by the closed-loop load generator in verify
/// mode, where every response is checked against a locally built
/// single-index engine — zero mismatches allowed. Also checks the
/// stats surface reports per-shard candidate counts.
#[test]
fn loadgen_verifies_sharded_server() {
    use atsq_core::Partition;
    use atsq_service::{run_loadgen, LoadgenConfig};

    let (dataset, _) = city(35);
    let service = Service::build(
        dataset.clone(),
        ServiceConfig {
            workers: 4,
            batch_size: 8,
            shards: 3,
            partition: Partition::Spatial,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let server = Server::bind(service.handle(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();

    let report = run_loadgen(
        &addr,
        &dataset,
        &LoadgenConfig {
            concurrency: 6,
            requests: 240,
            pool: 16,
            k: 5,
            verify: true,
            ..LoadgenConfig::default()
        },
    )
    .unwrap();
    assert_eq!(report.incorrect, 0, "sharded answers diverged: {report}");
    assert_eq!(report.errors, 0, "{report}");
    assert_eq!(report.ok, 240, "{report}");

    let stats = service.stats();
    assert_eq!(stats.shard_candidates.len(), 3);
    assert!(stats.shard_candidates.iter().sum::<u64>() > 0);

    server.stop();
    service.shutdown();
}

/// Full-stack smoke: GAT behind the service behind TCP equals GAT
/// called directly, under concurrent TCP clients.
#[test]
fn tcp_clients_get_correct_results_concurrently() {
    use atsq_service::wire::{decode_server_reply, encode_request, ServerReply};
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let (dataset, queries) = city(34);
    let reference = GatEngine::build(&dataset).unwrap();
    let expected: Vec<Vec<QueryResult>> = queries
        .iter()
        .map(|q| reference.atsq(&dataset, q, 5))
        .collect();

    let service = Service::build(
        dataset,
        ServiceConfig {
            workers: 4,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let server = Server::bind(service.handle(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    std::thread::scope(|scope| {
        for t in 0..6 {
            let queries = &queries;
            let expected = &expected;
            scope.spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut stream = stream;
                for rep in 0..10 {
                    let j = (t + rep) % queries.len();
                    let line = encode_request(
                        &Request::Atsq {
                            query: queries[j].clone(),
                            k: 5,
                        },
                        None,
                    )
                    .to_json();
                    stream.write_all(line.as_bytes()).unwrap();
                    stream.write_all(b"\n").unwrap();
                    let mut reply = String::new();
                    reader.read_line(&mut reply).unwrap();
                    match decode_server_reply(reply.trim()).unwrap() {
                        ServerReply::Ok { results, .. } => {
                            assert_eq!(results.len(), expected[j].len());
                            for (got, want) in results.iter().zip(&expected[j]) {
                                assert_eq!(got.trajectory, want.trajectory);
                                assert!((got.distance - want.distance).abs() < 1e-9);
                            }
                        }
                        other => panic!("unexpected {other:?}"),
                    }
                }
            });
        }
    });

    server.stop();
    service.shutdown();
}
