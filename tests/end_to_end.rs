//! End-to-end scenarios on city-scale generated data: the full
//! pipeline from generation through indexing to ranked answers, plus
//! behavioural properties the paper's evaluation relies on.

use atsq_core::prelude::*;
use atsq_datagen::{generate, generate_queries, CityConfig, QueryGenConfig};
use atsq_matching::{min_match_distance, order_match::min_order_match_distance};

#[test]
fn la_like_pipeline_produces_consistent_topk() {
    let dataset = generate(&CityConfig::la_like(0.004)).unwrap();
    let gat = GatEngine::build(&dataset).unwrap();
    let queries = generate_queries(
        &dataset,
        &QueryGenConfig {
            query_points: 4,
            acts_per_point: 3,
            ..Default::default()
        },
        10,
    );
    for q in &queries {
        let res = gat.atsq(&dataset, q, 9);
        // Results sorted ascending, distances non-negative, no dups.
        assert!(res.windows(2).all(|w| w[0].distance <= w[1].distance));
        assert!(res.iter().all(|r| r.distance >= 0.0));
        let mut ids: Vec<_> = res.iter().map(|r| r.trajectory).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), res.len(), "duplicate trajectory in top-k");
        // The source trajectory of the query guarantees ≥1 match.
        assert!(!res.is_empty());
    }
}

#[test]
fn oatsq_results_are_a_subset_relation_of_atsq_matches() {
    // Every ordered match is an unordered match with Dmm ≤ Dmom.
    let dataset = generate(&CityConfig::tiny(91)).unwrap();
    let gat = GatEngine::build(&dataset).unwrap();
    let queries = generate_queries(
        &dataset,
        &QueryGenConfig {
            query_points: 3,
            acts_per_point: 2,
            ..Default::default()
        },
        5,
    );
    for q in &queries {
        for r in gat.oatsq(&dataset, q, 10) {
            let pts = &dataset.trajectory(r.trajectory).points;
            let dmm = min_match_distance(q, pts).expect("ordered match implies match");
            assert!(dmm <= r.distance + 1e-9, "Lemma 3 violated");
            let dmom = min_order_match_distance(q, pts, f64::INFINITY).unwrap();
            assert!((dmom - r.distance).abs() < 1e-9);
        }
    }
}

#[test]
fn io_stats_show_gat_pruning() {
    // GAT must evaluate far fewer full distances than the number of
    // trajectories containing the query activities (the IL candidate
    // count) on a skewed workload.
    let dataset = generate(&CityConfig::la_like(0.004)).unwrap();
    let gat = GatEngine::build(&dataset).unwrap();
    let il = IlEngine::build(&dataset);
    let queries = generate_queries(&dataset, &QueryGenConfig::default(), 10);
    let mut il_candidates = 0usize;
    for q in &queries {
        let _ = gat.atsq(&dataset, q, 9);
        il_candidates += il.candidates(q).len();
    }
    let snap = gat.index().stats().snapshot();
    assert!(snap.distances_computed > 0);
    // The headline claim in miniature: GAT's spatial+activity pruning
    // avoids evaluating a large share of IL's activity-only candidates.
    assert!(
        (snap.distances_computed as usize) < il_candidates.max(1) * 2,
        "GAT evaluated {} vs IL candidates {}",
        snap.distances_computed,
        il_candidates
    );
}

#[test]
fn grid_granularity_sweep_runs() {
    // Fig. 8 machinery: all four granularities produce identical
    // answers and monotone non-decreasing memory.
    let dataset = generate(&CityConfig::tiny(13)).unwrap();
    let queries = generate_queries(&dataset, &QueryGenConfig::default(), 3);
    let mut reference: Option<Vec<Vec<QueryResult>>> = None;
    let mut last_mem = 0usize;
    for d in [5u8, 6, 7, 8] {
        let engine = GatEngine::build_with(
            &dataset,
            GatConfig {
                grid_level: d,
                memory_level: d.min(6),
                ..GatConfig::default()
            },
        )
        .unwrap();
        let answers: Vec<Vec<QueryResult>> = queries
            .iter()
            .map(|q| engine.atsq(&dataset, q, 9))
            .collect();
        match &reference {
            None => reference = Some(answers),
            Some(r) => assert_eq!(r, &answers, "granularity {d} changed answers"),
        }
        let mem = engine.index().memory_report().main_memory_bytes();
        assert!(mem >= last_mem);
        last_mem = mem;
    }
}

#[test]
fn scalability_samples_preserve_prefix_results() {
    // Fig. 7 machinery: results on a prefix sample agree with a scan
    // of that sample (the sample is a valid standalone dataset).
    let dataset = generate(&CityConfig::ny_like(0.004)).unwrap();
    let half = dataset.sample_prefix(dataset.len() / 2);
    assert_eq!(half.len(), dataset.len() / 2);
    let gat = GatEngine::build(&half).unwrap();
    let queries = generate_queries(&half, &QueryGenConfig::default(), 5);
    for q in &queries {
        let got = gat.atsq(&half, q, 5);
        let mut want = Vec::new();
        for tr in half.trajectories() {
            if let Some(d) = min_match_distance(q, &tr.points) {
                want.push(QueryResult::new(tr.id, d));
            }
        }
        let want = atsq_core::types::rank_top_k(want, 5);
        assert_eq!(got, want);
    }
}

#[test]
fn vocabulary_survives_round_trip() {
    let dataset = generate(&CityConfig::tiny(3)).unwrap();
    let v = dataset.vocabulary();
    // Every activity id used by any point resolves to a name, and that
    // name resolves back to the same id.
    for tr in dataset.trajectories() {
        for p in &tr.points {
            for a in p.activities.iter() {
                let name = v.name(a).expect("name for used id");
                assert_eq!(v.get(name), Some(a));
            }
        }
    }
}

#[test]
fn kbct_prefers_geometry_over_activities() {
    // Reconstructs Fig. 1's motivation on generated data: k-BCT (pure
    // geometry) and ATSQ (activity-aware) disagree on some queries, and
    // for each result Dbm ≤ Dmm (Lemma 2).
    let dataset = generate(&CityConfig::tiny(301)).unwrap();
    let rt = atsq_core::RtEngine::build(&dataset);
    let queries = generate_queries(&dataset, &QueryGenConfig::default(), 10);
    let mut disagreements = 0;
    for q in &queries {
        let kbct = rt.kbct(&dataset, q, 3);
        let atsq = rt.atsq(&dataset, q, 3);
        assert!(!kbct.is_empty());
        // Lemma 2 on the activity-aware results.
        for r in &atsq {
            let pts = &dataset.trajectory(r.trajectory).points;
            let dbm = atsq_matching::best_match_distance(q, pts);
            assert!(dbm <= r.distance + 1e-9);
        }
        if kbct.first().map(|r| r.trajectory) != atsq.first().map(|r| r.trajectory) {
            disagreements += 1;
        }
        // kbct distances are ascending and equal the kernel value.
        for r in &kbct {
            let pts = &dataset.trajectory(r.trajectory).points;
            let dbm = atsq_matching::best_match_distance(q, pts);
            assert!((dbm - r.distance).abs() < 1e-9);
        }
    }
    assert!(
        disagreements > 0,
        "k-BCT should disagree with ATSQ on some queries (Fig. 1's point)"
    );
}

#[test]
fn simplification_preserves_query_answers() {
    // Dropping activity-free points must not change any ATSQ/OATSQ
    // answer (the kernels only consult activity-bearing points).
    let dataset = generate(&CityConfig::tiny(307)).unwrap();
    let mut b = atsq_core::prelude::DatasetBuilder::new().without_frequency_ranking();
    for i in 0..dataset.vocabulary().len() as u32 {
        let name = dataset
            .vocabulary()
            .name(atsq_core::prelude::ActivityId(i))
            .unwrap();
        b.observe_activity(name);
    }
    for tr in dataset.trajectories() {
        // Interleave synthetic GPS breadcrumbs between venues.
        let mut pts = Vec::new();
        for w in tr.points.windows(2) {
            pts.push(w[0].clone());
            let mid = Point::new(
                (w[0].loc.x + w[1].loc.x) / 2.0,
                (w[0].loc.y + w[1].loc.y) / 2.0,
            );
            pts.push(TrajectoryPoint::new(mid, ActivitySet::new()));
        }
        pts.push(tr.points.last().unwrap().clone());
        b.push_trajectory(atsq_core::types::simplify::simplify(&pts, 0.05));
    }
    let simplified = b.finish().unwrap();
    let g1 = GatEngine::build(&dataset).unwrap();
    let g2 = GatEngine::build(&simplified).unwrap();
    let queries = generate_queries(&dataset, &QueryGenConfig::default(), 5);
    for q in &queries {
        let a = g1.atsq(&dataset, q, 5);
        let b2 = g2.atsq(&simplified, q, 5);
        assert_eq!(
            a.iter()
                .map(|r| (r.trajectory, (r.distance * 1e9).round() as i64))
                .collect::<Vec<_>>(),
            b2.iter()
                .map(|r| (r.trajectory, (r.distance * 1e9).round() as i64))
                .collect::<Vec<_>>(),
            "simplification changed answers"
        );
    }
}
