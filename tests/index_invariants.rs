//! Structural invariants of every index on generated data:
//! HICL ancestor closure, ITL completeness, TAS no-false-dismissal,
//! APL exactness, R-tree shape invariants, and the Algorithm-2 lower
//! bound actually lower-bounding real distances.

use atsq_datagen::{generate, generate_queries, CityConfig, QueryGenConfig};
use atsq_gat::{GatConfig, GatIndex};
use atsq_matching::min_match_distance;
use atsq_rtree::RTree;
use atsq_types::{Dataset, Rect};

fn dataset() -> Dataset {
    generate(&CityConfig::tiny(31)).unwrap()
}

fn index(d: &Dataset) -> GatIndex {
    GatIndex::build_with(
        d,
        GatConfig {
            grid_level: 6,
            memory_level: 4,
            tas_intervals: 3,
            ..GatConfig::default()
        },
    )
    .unwrap()
}

#[test]
fn hicl_contains_every_point_activity_at_every_level() {
    let d = dataset();
    let idx = index(&d);
    for tr in d.trajectories() {
        for p in &tr.points {
            let leaf = idx.grid().leaf_cell_of(&p.loc);
            for a in p.activities.iter() {
                for level in 1..=idx.grid().max_level() {
                    let cell = leaf.ancestor_at(level);
                    assert!(
                        idx.hicl().cell_contains(cell, a),
                        "HICL misses activity {a} at level {level}"
                    );
                }
            }
        }
    }
}

#[test]
fn itl_lists_every_trajectory_under_its_activities() {
    let d = dataset();
    let idx = index(&d);
    for tr in d.trajectories() {
        for p in &tr.points {
            let leaf = idx.grid().leaf_cell_of(&p.loc);
            for a in p.activities.iter() {
                assert!(
                    idx.itl().trajectories(leaf, a).contains(&tr.id),
                    "ITL misses {} under {a}",
                    tr.id
                );
            }
        }
    }
}

#[test]
fn tas_never_dismisses_a_true_match() {
    let d = dataset();
    let idx = index(&d);
    for tr in d.trajectories() {
        let all = tr.all_activities();
        let sketch = idx.tas().sketch(tr.id.index());
        assert!(
            sketch.covers(&all),
            "TAS dismissed {}'s own activities",
            tr.id
        );
        for a in all.iter() {
            assert!(sketch.contains(a));
        }
    }
}

#[test]
fn apl_is_exact() {
    let d = dataset();
    let idx = index(&d);
    for tr in d.trajectories() {
        let postings = idx.postings(tr.id.index()).unwrap();
        for (i, p) in tr.points.iter().enumerate() {
            for a in p.activities.iter() {
                assert!(postings.postings(a).contains(&(i as u32)));
            }
        }
        // No phantom postings.
        let all = tr.all_activities();
        assert!(postings.contains_all(&all));
        for a in all.iter() {
            for &pi in postings.postings(a) {
                assert!(tr.points[pi as usize].activities.contains(a));
            }
        }
    }
}

#[test]
fn gat_results_lower_bounded_by_construction() {
    // Every distance GAT reports must equal the kernel-computed Dmm —
    // i.e. the index must never corrupt a distance.
    let d = dataset();
    let idx = index(&d);
    let queries = generate_queries(&d, &QueryGenConfig::default(), 5);
    for q in &queries {
        for r in atsq_gat::atsq(&idx, &d, q, 10) {
            let exact = min_match_distance(q, &d.trajectory(r.trajectory).points)
                .expect("reported result must be a match");
            assert!(
                (r.distance - exact).abs() < 1e-9,
                "distance drift for {}",
                r.trajectory
            );
        }
    }
}

#[test]
fn rtree_invariants_on_generated_venues() {
    let d = dataset();
    let mut tree: RTree<u32> = RTree::new();
    let mut bulk_items = Vec::new();
    let mut n = 0u32;
    for tr in d.trajectories() {
        for p in &tr.points {
            tree.insert(Rect::from_point(p.loc), n);
            bulk_items.push((Rect::from_point(p.loc), n));
            n += 1;
        }
    }
    tree.check_invariants().unwrap();
    let bulk: RTree<u32> = RTree::bulk_load(bulk_items);
    bulk.check_invariants().unwrap();
    assert_eq!(tree.len(), bulk.len());
}

#[test]
fn memory_report_scales_with_grid_depth() {
    // Fig. 8's memory curve: finer grids must never *reduce* the
    // index footprint.
    let d = dataset();
    let mut last = 0usize;
    for depth in [4u8, 5, 6] {
        let idx = GatIndex::build_with(
            &d,
            GatConfig {
                grid_level: depth,
                memory_level: depth.min(4),
                ..GatConfig::default()
            },
        )
        .unwrap();
        let mem = idx.memory_report().main_memory_bytes();
        assert!(
            mem >= last,
            "memory shrank with finer grid: {last} -> {mem} at d={depth}"
        );
        last = mem;
    }
}

#[test]
fn grid_level_does_not_change_results() {
    let d = dataset();
    let queries = generate_queries(&d, &QueryGenConfig::default(), 3);
    let reference = index(&d);
    for depth in [4u8, 5, 7] {
        let idx = GatIndex::build_with(
            &d,
            GatConfig {
                grid_level: depth,
                memory_level: depth.min(4),
                ..GatConfig::default()
            },
        )
        .unwrap();
        for q in &queries {
            assert_eq!(
                atsq_gat::atsq(&idx, &d, q, 5),
                atsq_gat::atsq(&reference, &d, q, 5),
                "results changed at grid depth {depth}"
            );
            assert_eq!(
                atsq_gat::oatsq(&idx, &d, q, 5),
                atsq_gat::oatsq(&reference, &d, q, 5),
                "ordered results changed at grid depth {depth}"
            );
        }
    }
}

#[test]
fn tight_bound_is_sound_under_tiny_frontier_budget() {
    // Regression test for the Algorithm-2 frontier: with lb_cells = 1
    // and λ = 1 the tracked cellsn(qi) prefix shrinks constantly while
    // many farther cells remain unvisited. A bound computed from a
    // *truncated* (rather than prefix-viewed) frontier overestimates in
    // exactly this regime and silently drops true results.
    use atsq_types::{ActivitySet, DatasetBuilder, Point, Query, QueryPoint, TrajectoryPoint};
    let mut b = DatasetBuilder::new().without_frequency_ranking();
    let a = b.observe_activity("a");
    let bct = b.observe_activity("b");
    // A dense ring of single-point decoys around the query, plus two
    // genuine matches at different radii.
    for i in 0..120u32 {
        let ang = f64::from(i) * 0.21;
        let r = 3.0 + f64::from(i % 7);
        b.push_trajectory(vec![TrajectoryPoint::new(
            Point::new(50.0 + r * ang.cos(), 50.0 + r * ang.sin()),
            ActivitySet::from_ids([a]),
        )]);
    }
    // True matches (need both activities).
    b.push_trajectory(vec![
        TrajectoryPoint::new(Point::new(51.0, 50.0), ActivitySet::from_ids([a])),
        TrajectoryPoint::new(Point::new(50.0, 51.0), ActivitySet::from_ids([bct])),
    ]);
    b.push_trajectory(vec![TrajectoryPoint::new(
        Point::new(58.0, 50.0),
        ActivitySet::from_ids([a, bct]),
    )]);
    let d = b.finish().unwrap();
    let q = Query::new(vec![QueryPoint::new(
        Point::new(50.0, 50.0),
        ActivitySet::from_ids([a, bct]),
    )])
    .unwrap();

    let mut want = Vec::new();
    for tr in d.trajectories() {
        if let Some(dist) = min_match_distance(&q, &tr.points) {
            want.push(atsq_types::QueryResult::new(tr.id, dist));
        }
    }
    let want = atsq_types::rank_top_k(want, 5);
    assert_eq!(want.len(), 2);

    for lb_cells in [1usize, 2, 3] {
        for lambda in [1usize, 2] {
            let idx = GatIndex::build_with(
                &d,
                GatConfig {
                    grid_level: 7,
                    memory_level: 4,
                    lambda,
                    lb_cells,
                    ..GatConfig::default()
                },
            )
            .unwrap();
            let got = atsq_gat::atsq(&idx, &d, &q, 5);
            assert_eq!(got, want, "lb_cells={lb_cells} λ={lambda}");
        }
    }
}
