//! Trip planning over a synthetic city — the paper's §I motivating
//! scenario: a tourist plans three stops with desired activities and
//! wants the travel histories of like-minded locals as references.
//!
//! Run with: `cargo run --release --example trip_planning`

use atsq_core::prelude::*;
use atsq_datagen::{generate, generate_queries, CityConfig, QueryGenConfig};
use std::time::Instant;

fn main() {
    // A Los-Angeles-like city at 2% scale: ~630 users.
    let city = CityConfig::la_like(0.02);
    println!(
        "Generating {} ({} trajectories)...",
        city.name, city.trajectories
    );
    let dataset = generate(&city).expect("generation");
    let stats = dataset.stats();
    println!("{stats}\n");

    let t0 = Instant::now();
    let engine = GatEngine::build(&dataset).expect("index");
    println!("GAT index built in {:.1?}", t0.elapsed());
    let mem = engine.index().memory_report();
    println!(
        "memory: HICL {} KiB (+{} KiB cold) | ITL {} KiB | TAS {} KiB | APL {} KiB on disk\n",
        mem.hicl_hot_bytes / 1024,
        mem.hicl_cold_bytes / 1024,
        mem.itl_bytes / 1024,
        mem.tas_bytes / 1024,
        mem.apl_disk_bytes / 1024
    );

    // A three-stop itinerary sampled from real user behaviour (the
    // §VII-A protocol), with the paper's default |q.Φ| = 3.
    let query = generate_queries(
        &dataset,
        &QueryGenConfig {
            query_points: 3,
            acts_per_point: 3,
            diameter_km: Some(10.0),
            common_acts_only: false,
            seed: 2024,
        },
        1,
    )
    .remove(0);

    println!("Tourist itinerary (δ(Q) = {:.1} km):", query.diameter());
    for (i, p) in query.points.iter().enumerate() {
        let names: Vec<&str> = p
            .activities
            .iter()
            .filter_map(|a| dataset.vocabulary().name(a))
            .collect();
        println!("  stop {}: {} wants {:?}", i + 1, p.loc, names);
    }

    let t1 = Instant::now();
    let recommendations = engine.atsq(&dataset, &query, 5);
    println!("\nTop-5 reference trajectories ({:.2?}):", t1.elapsed());
    for r in &recommendations {
        let tr = dataset.trajectory(r.trajectory);
        println!(
            "  {}  Dmm = {:>7.3} km  ({} check-ins, {:.1} km travelled)",
            r.trajectory,
            r.distance,
            tr.len(),
            tr.path_length()
        );
    }

    let snap = engine.index().stats().snapshot();
    println!(
        "\nindex work: {} candidates, {} TAS checks ({} false positives), {} APL fetches, {} full distance evaluations",
        snap.candidates_retrieved,
        snap.tas_checks,
        snap.tas_false_positives,
        snap.apl_reads,
        snap.distances_computed
    );
}
