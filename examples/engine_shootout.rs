//! Mini shootout of the four engines (IL, RT, IRT, GAT) on one
//! workload — a console-sized preview of the paper's §VII evaluation.
//! The full parameter sweeps live in the `experiments` binary of the
//! `atsq-bench` crate.
//!
//! Run with: `cargo run --release --example engine_shootout`

use atsq_core::{Engine, QueryEngine};
use atsq_datagen::{generate, generate_queries, CityConfig, QueryGenConfig};
use std::time::Instant;

fn main() {
    let dataset = generate(&CityConfig::la_like(0.02)).expect("generation");
    println!(
        "dataset: {} trajectories, {} check-ins, {} distinct activities",
        dataset.len(),
        dataset.stats().venues,
        dataset.stats().distinct_activities
    );

    let t0 = Instant::now();
    let engines = Engine::build_all(&dataset).expect("engines");
    println!("built IL, RT, IRT, GAT in {:.1?}\n", t0.elapsed());

    let queries = generate_queries(
        &dataset,
        &QueryGenConfig {
            query_points: 4,
            acts_per_point: 3,
            diameter_km: Some(10.0),
            common_acts_only: false,
            seed: 42,
        },
        20,
    );

    println!("{:<6} {:>14} {:>14}", "engine", "ATSQ avg", "OATSQ avg");
    let mut reference: Option<Vec<_>> = None;
    for e in &engines {
        let t = Instant::now();
        let answers: Vec<_> = queries.iter().map(|q| e.atsq(&dataset, q, 9)).collect();
        let atsq_avg = t.elapsed() / queries.len() as u32;

        let t = Instant::now();
        for q in &queries {
            let _ = e.oatsq(&dataset, q, 9);
        }
        let oatsq_avg = t.elapsed() / queries.len() as u32;

        println!("{:<6} {:>14.2?} {:>14.2?}", e.name(), atsq_avg, oatsq_avg);

        // All engines must agree — that's the point of baselines.
        match &reference {
            None => reference = Some(answers),
            Some(r) => assert_eq!(r, &answers, "{} disagreed with IL", e.name()),
        }
    }
    println!("\nall engines returned identical top-9 answers ✓");
}
