//! Order-sensitive search (OATSQ, §VI): when the visiting order
//! matters — breakfast before the museum, dinner after — the ranking
//! can change completely. This example contrasts ATSQ and OATSQ on the
//! same query and reports where they diverge.
//!
//! Run with: `cargo run --release --example ordered_tour`

use atsq_core::prelude::*;
use atsq_datagen::{generate, generate_queries, CityConfig, QueryGenConfig};

fn main() {
    let dataset = generate(&CityConfig::ny_like(0.01)).expect("generation");
    println!(
        "NY-like sample: {} trajectories, {} check-ins\n",
        dataset.len(),
        dataset.stats().venues
    );
    let engine = GatEngine::build(&dataset).expect("index");

    let queries = generate_queries(
        &dataset,
        &QueryGenConfig {
            query_points: 4,
            acts_per_point: 2,
            diameter_km: None,
            common_acts_only: false,
            seed: 77,
        },
        20,
    );

    let mut diverged = 0usize;
    for (i, query) in queries.iter().enumerate() {
        let free = engine.atsq(&dataset, query, 3);
        let ordered = engine.oatsq(&dataset, query, 3);
        let free_ids: Vec<_> = free.iter().map(|r| r.trajectory).collect();
        let ordered_ids: Vec<_> = ordered.iter().map(|r| r.trajectory).collect();
        if free_ids != ordered_ids {
            diverged += 1;
            println!("query #{i:02}: rankings diverge");
            println!("  order-free : {free_ids:?}");
            println!("  ordered    : {ordered_ids:?}");
            if let (Some(f), Some(o)) = (free.first(), ordered.first()) {
                println!(
                    "  best Dmm = {:.3}, best Dmom = {:.3} (Lemma 3: Dmm ≤ Dmom)",
                    f.distance, o.distance
                );
            }
        }
    }
    println!(
        "\n{diverged} of {} queries ranked differently once order mattered.",
        queries.len()
    );
}
