//! The APL on real pages: build a GAT index whose posting lists live in
//! a page file behind an LRU buffer pool, query it, and watch the page
//! traffic respond to the pool size — the paper's "APL on hard disk"
//! design (§IV) made concrete.
//!
//! Run with: `cargo run --example paged_storage`

use atsq_core::prelude::*;
use atsq_core::{PagedAplConfig, PagedBacking};
use atsq_datagen::{generate, generate_queries, CityConfig, QueryGenConfig};

fn main() {
    // A mid-sized synthetic city (the Foursquare-like generator).
    let dataset = generate(&CityConfig::la_like(0.02)).expect("generation");
    let queries = generate_queries(
        &dataset,
        &QueryGenConfig {
            query_points: 3,
            acts_per_point: 2,
            ..Default::default()
        },
        20,
    );
    println!(
        "{} trajectories; running {} queries per configuration\n",
        dataset.len(),
        queries.len()
    );

    // Reference: everything in memory.
    let mem = GatEngine::build(&dataset).expect("index builds");

    // The APL in a real page file, pools from generous to starved.
    let path = std::env::temp_dir().join("atsq-example-apl.pages");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>8}",
        "pool", "hits", "misses", "evictions", "hit%"
    );
    for frames in [1024, 64, 8, 1] {
        let engine = GatEngine::build_paged(
            &dataset,
            GatConfig::default(),
            &PagedAplConfig {
                page_size: 4096,
                pool_frames: frames,
                backing: PagedBacking::File(path.clone()),
            },
        )
        .expect("paged index builds");

        let mut checked = 0usize;
        for q in &queries {
            let got = engine.atsq(&dataset, q, 9);
            assert_eq!(
                got,
                mem.atsq(&dataset, q, 9),
                "pages must not change answers"
            );
            checked += got.len();
        }
        let s = engine
            .index()
            .apl()
            .pool_stats()
            .expect("paged backend reports pool stats");
        println!(
            "{frames:>8} {:>10} {:>10} {:>10} {:>7.1}%",
            s.hits,
            s.misses,
            s.evictions,
            s.hit_ratio() * 100.0
        );
        let _ = checked;
    }
    println!("\nidentical answers at every pool size — storage is a pure substitution");
    let _ = std::fs::remove_file(&path);
    // The cold HICL levels live in a sibling page file.
    let mut cold = path.into_os_string();
    cold.push(".hicl");
    let _ = std::fs::remove_file(cold);
}
