//! Witness extraction: don't just rank trajectories — show *which*
//! venues realise the match (the `Tr.MM(Q)` point sets of the paper's
//! Definition 6), which is what a trip-planning UI actually renders.
//!
//! Run with: `cargo run --release --example itinerary_match`

use atsq_core::matching::witness::{min_match_witness, min_order_match_witness};
use atsq_core::prelude::*;
use atsq_datagen::{generate, generate_queries, CityConfig, QueryGenConfig};

fn main() {
    let dataset = generate(&CityConfig::la_like(0.01)).expect("generation");
    let engine = GatEngine::build(&dataset).expect("index");
    let query = generate_queries(
        &dataset,
        &QueryGenConfig {
            query_points: 3,
            acts_per_point: 2,
            diameter_km: Some(8.0),
            common_acts_only: false,
            seed: 7,
        },
        1,
    )
    .remove(0);

    println!(
        "Plan ({} stops, δ = {:.1} km):",
        query.len(),
        query.diameter()
    );
    for (i, p) in query.points.iter().enumerate() {
        let names: Vec<&str> = p
            .activities
            .iter()
            .filter_map(|a| dataset.vocabulary().name(a))
            .collect();
        println!("  stop {}: near {} do {:?}", i + 1, p.loc, names);
    }

    let results = engine.atsq(&dataset, &query, 3);
    println!("\nTop-{} matches with their witness venues:", results.len());
    for r in &results {
        let tr = dataset.trajectory(r.trajectory);
        println!("\n  {}  (Dmm = {:.3} km)", r.trajectory, r.distance);
        let witnesses = min_match_witness(&query, &tr.points).expect("result must be a match");
        for (i, w) in witnesses.iter().enumerate() {
            println!(
                "    stop {} covered at cost {:.3} km by:",
                i + 1,
                w.distance
            );
            for &pi in &w.points {
                let p = &tr.points[pi as usize];
                let names: Vec<&str> = p
                    .activities
                    .iter()
                    .filter_map(|a| dataset.vocabulary().name(a))
                    .collect();
                println!("      venue #{pi} at {} with {:?}", p.loc, names);
            }
        }
        // The order-sensitive witness, when one exists, shows the
        // stops in visiting order.
        match min_order_match_witness(&query, &tr.points) {
            Some(ordered) => {
                let total: f64 = ordered.iter().map(|w| w.distance).sum();
                println!("    order-sensitive itinerary exists (Dmom = {total:.3} km)");
            }
            None => println!("    no order-sensitive itinerary for this trajectory"),
        }
    }
}
