//! Quickstart: build a tiny activity-trajectory database by hand, ask
//! for the best trajectories covering a two-stop plan, and print the
//! ranked answers.
//!
//! Run with: `cargo run --example quickstart`

use atsq_core::prelude::*;

fn main() {
    // --- 1. Build a dataset -------------------------------------------------
    // Three users' check-in histories in a small town. Coordinates are
    // kilometres on a local plane.
    let mut b = DatasetBuilder::new();
    let coffee = b.observe_activity("coffee");
    let art = b.observe_activity("art-gallery");
    let hike = b.observe_activity("hiking");
    let food = b.observe_activity("street-food");

    // User 0: coffee downtown, then the gallery district.
    b.push_trajectory(vec![
        TrajectoryPoint::new(Point::new(0.2, 0.1), ActivitySet::from_ids([coffee])),
        TrajectoryPoint::new(Point::new(2.1, 1.9), ActivitySet::from_ids([art])),
        TrajectoryPoint::new(Point::new(3.0, 2.5), ActivitySet::from_ids([food])),
    ]);
    // User 1: gallery first, coffee later (reverse order!).
    b.push_trajectory(vec![
        TrajectoryPoint::new(Point::new(2.0, 2.0), ActivitySet::from_ids([art])),
        TrajectoryPoint::new(Point::new(0.1, 0.0), ActivitySet::from_ids([coffee])),
    ]);
    // User 2: hiking far away.
    b.push_trajectory(vec![
        TrajectoryPoint::new(Point::new(20.0, 20.0), ActivitySet::from_ids([hike])),
        TrajectoryPoint::new(Point::new(21.0, 20.0), ActivitySet::from_ids([coffee])),
    ]);
    let dataset = b.finish().expect("valid dataset");

    // --- 2. Index with GAT --------------------------------------------------
    let engine = GatEngine::build(&dataset).expect("index build");

    // --- 3. Ask: coffee near the station, then art near the old town -------
    let coffee = dataset.vocabulary().get("coffee").unwrap();
    let art = dataset.vocabulary().get("art-gallery").unwrap();
    let query = Query::new(vec![
        QueryPoint::new(Point::new(0.0, 0.0), ActivitySet::from_ids([coffee])),
        QueryPoint::new(Point::new(2.0, 2.0), ActivitySet::from_ids([art])),
    ])
    .expect("valid query");

    println!("ATSQ (order-free) top-3:");
    for r in engine.atsq(&dataset, &query, 3) {
        println!("  {}  Dmm = {:.3} km", r.trajectory, r.distance);
    }

    // The order-sensitive variant demands coffee BEFORE art: user 1's
    // reversed trip drops out.
    println!("OATSQ (coffee first, then art) top-3:");
    for r in engine.oatsq(&dataset, &query, 3) {
        println!("  {}  Dmom = {:.3} km", r.trajectory, r.distance);
    }
}
