//! End-to-end pipeline from raw check-in text to answered queries:
//!
//! 1. a check-in log whose activity evidence is free-text tips,
//! 2. activity mining (tokenize → stopwords → stem → phrases),
//! 3. dataset assembly with frequency-ranked activity ids,
//! 4. a GAT-indexed ATSQ asked in plain words.
//!
//! Run with: `cargo run --example checkin_tips`

use atsq_core::prelude::*;
use atsq_io::import_checkin_tips;
use atsq_text::ExtractorConfig;
use atsq_types::Point;

// A morning downtown, written the way people actually write tips.
const LOG: &str = "\
user,lat,lon,time,tip
ana,34.050,-118.250,100,Great espresso at this coffee shop — best in town!
ana,34.052,-118.246,130,the art gallery opening was packed, loved the paintings
ana,34.056,-118.240,190,amazing ramen, come hungry
ben,34.049,-118.251,90,quiet coffee shop for working; the espresso is strong
ben,34.055,-118.241,160,ramen was rich and the broth perfect
ben,34.060,-118.238,220,live music at the bar tonight
caro,34.051,-118.248,80,espresso and croissants before the gallery
caro,34.053,-118.245,140,the art gallery has a new wing
caro,34.061,-118.237,260,live music and cocktails
dan,34.058,-118.239,50,ramen ramen ramen
dan,34.048,-118.252,300,an espresso to finish the day
";

fn main() {
    // --- 1+2+3: import with activity mining --------------------------------
    let config = ExtractorConfig {
        min_activity_count: 2,
        phrase_min_count: 2,
        phrase_cohesion: 2.0,
        ..ExtractorConfig::default()
    };
    let (dataset, extractor) =
        import_checkin_tips(LOG.as_bytes(), 2, &config).expect("import succeeds");

    println!("mined vocabulary (activity, corpus frequency):");
    for (tag, count) in extractor.vocabulary() {
        println!("  {tag:<14} {count}");
    }
    println!(
        "\n{} trajectories over {} distinct activities\n",
        dataset.len(),
        dataset.vocabulary().len()
    );

    // --- 4: query in plain words -------------------------------------------
    // "coffee then ramen": map the words through the same extractor the
    // corpus was mined with, so phrases and stems line up.
    let stops = [
        (Point::new(0.0, 0.0), "a good espresso at a coffee shop"),
        (Point::new(1.0, 0.6), "a bowl of ramen"),
    ];
    let vocabulary = dataset.vocabulary();
    let mut points = Vec::new();
    for (loc, text) in stops {
        let tags = extractor.extract(text);
        let ids: Vec<_> = tags.iter().filter_map(|t| vocabulary.get(t)).collect();
        println!("stop at ({:.1}, {:.1}) asks for {tags:?}", loc.x, loc.y);
        points.push(QueryPoint::new(loc, ActivitySet::from_ids(ids)));
    }
    let query = Query::new(points).expect("non-empty query");

    let engine = GatEngine::build(&dataset).expect("index builds");
    println!("\ntop matches (order-insensitive):");
    for r in engine.atsq(&dataset, &query, 3) {
        println!(
            "  trajectory {:>2}  Dmm = {:.3} km",
            r.trajectory.0, r.distance
        );
    }
    println!("\ntop matches (order-sensitive — coffee BEFORE ramen):");
    for r in engine.oatsq(&dataset, &query, 3) {
        println!(
            "  trajectory {:>2}  Dmom = {:.3} km",
            r.trajectory.0, r.distance
        );
    }
}
