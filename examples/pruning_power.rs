//! Why GAT wins: run the same workload through all four engines and
//! compare *work*, not just time — candidates retrieved, distance
//! evaluations, sketch discards (the `Profiled` counters behind the
//! `experiments prune` report).
//!
//! Run with: `cargo run --release --example pruning_power`

use atsq_core::prelude::*;
use atsq_core::{Engine, Profiled};
use atsq_datagen::{generate, generate_queries, CityConfig, QueryGenConfig};

fn main() {
    let dataset = generate(&CityConfig::la_like(0.02)).expect("generation");
    let queries = generate_queries(
        &dataset,
        &QueryGenConfig {
            query_points: 4,
            acts_per_point: 3,
            diameter_km: Some(10.0),
            ..Default::default()
        },
        25,
    );
    println!(
        "{} trajectories, {} queries (Table V defaults)\n",
        dataset.len(),
        queries.len()
    );

    let engines = Engine::build_all(&dataset).expect("engines build");
    println!(
        "{:<6}{:>12}{:>12}{:>12}{:>12}{:>9}",
        "engine", "candidates", "dist evals", "TAS-pruned", "APL reads", "prune%"
    );
    let mut reference: Option<Vec<Vec<QueryResult>>> = None;
    for e in &engines {
        e.reset_counters();
        let answers: Vec<_> = queries.iter().map(|q| e.atsq(&dataset, q, 9)).collect();
        // Identical answers are the precondition for comparing work.
        match &reference {
            None => reference = Some(answers),
            Some(r) => assert_eq!(r, &answers, "{} diverged", e.name()),
        }
        let c = e.counters();
        let per = |v: u64| v as f64 / queries.len() as f64;
        println!(
            "{:<6}{:>12.1}{:>12.1}{:>12.1}{:>12.1}{:>8.1}%",
            e.name(),
            per(c.candidates),
            per(c.distance_evals),
            per(c.tas_pruned),
            per(c.apl_reads),
            c.prune_ratio() * 100.0
        );
    }
    println!(
        "\nsame answers everywhere; GAT simply refuses to refine most of\n\
         what it retrieves — the paper's \"prune by location proximity and\n\
         activity containment simultaneously\" (§I), measured."
    );
}
